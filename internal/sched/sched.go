// Package sched is a prototype of the paper's future-work direction
// (Section VII): combining instruction scheduling with register
// allocation for ATE translation. When a test pattern is retimed for a
// different-speed DRAM or a different interleaving factor, the slots
// inside each major cycle can be reordered — and the order decides
// which read-ahead-of-write constraints the PBQP graph carries.
//
// ScheduleCycles reorders the instructions inside every major cycle,
// preserving data dependences, with a defs-early greedy list scheduler:
// pulling definitions toward the front of a cycle strictly shrinks the
// set of (read at slot p, write at slot q > p) pairs those definitions
// participate in, which usually removes PBQP constraint edges and makes
// allocation easier. It is a heuristic, not an optimizer — the point is
// the pipeline: schedule, rebuild the PBQP, allocate, compare.
package sched

import (
	"pbqprl/internal/ate"
)

// Result reports the effect of scheduling on the derived PBQP problem.
type Result struct {
	Program *ate.Program
	// EdgesBefore and EdgesAfter count PBQP edges before and after.
	EdgesBefore, EdgesAfter int
	// InfBefore and InfAfter count infinite edge-matrix entries.
	// (Read-ahead-of-write constraints often coincide with
	// interference edges, so this can stay flat even when pairs drop.)
	InfBefore, InfAfter int
	// PairsBefore and PairsAfter count the same-cycle
	// read-ahead-of-write pairs directly — the quantity defs-early
	// scheduling minimizes.
	PairsBefore, PairsAfter int
}

// ReadAheadOfWritePairs counts, over all major cycles, the pairs
// (vreg read at slot p, vreg defined at slot q > p) — each one a PBQP
// must-differ constraint of Section II-B.
func ReadAheadOfWritePairs(p *ate.Program) int {
	ways := p.Machine.Ways
	pairs := 0
	for lo := 0; lo < len(p.Instrs); lo += ways {
		hi := lo + ways
		if hi > len(p.Instrs) {
			hi = len(p.Instrs)
		}
		reads := 0
		for i := lo; i < hi; i++ {
			if p.Instrs[i].DefReg() >= 0 {
				pairs += reads
			}
			reads += len(p.Instrs[i].Uses)
		}
	}
	return pairs
}

// ScheduleCycles returns a new program whose instructions are reordered
// within each major cycle (never across cycles), defs as early as data
// dependences allow. The input program is not mutated.
func ScheduleCycles(p *ate.Program) (*ate.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &ate.Program{
		Name:     p.Name + "+sched",
		Machine:  p.Machine,
		NumVRegs: p.NumVRegs,
		Allowed:  p.Allowed,
	}
	ways := p.Machine.Ways
	defined := make([]bool, p.NumVRegs) // defined in a previous cycle or emitted slot
	for lo := 0; lo < len(p.Instrs); lo += ways {
		hi := lo + ways
		if hi > len(p.Instrs) {
			hi = len(p.Instrs)
		}
		cycle := append([]ate.Instr(nil), p.Instrs[lo:hi]...)
		emitted := make([]bool, len(cycle))
		// the cycle's own defs are not available until emitted
		local := make(map[int]int) // vreg -> instr index within cycle
		for i, in := range cycle {
			if d := in.DefReg(); d >= 0 {
				local[d] = i
			}
		}
		ready := func(i int) bool {
			for _, u := range cycle[i].Uses {
				if j, ok := local[u]; ok && !emitted[j] && j != i {
					return false
				}
				if _, ok := local[u]; !ok && !defined[u] {
					return false
				}
			}
			return true
		}
		for emittedCount := 0; emittedCount < len(cycle); emittedCount++ {
			// prefer ready defining instructions, then ready others,
			// stable by original position
			pick := -1
			for pass := 0; pass < 2 && pick < 0; pass++ {
				for i := range cycle {
					if emitted[i] || !ready(i) {
						continue
					}
					isDef := cycle[i].DefReg() >= 0
					if (pass == 0) == isDef {
						pick = i
						break
					}
				}
			}
			if pick < 0 {
				// cyclic same-slot dependence cannot happen in a valid
				// program, but fall back to original order defensively
				for i := range cycle {
					if !emitted[i] {
						pick = i
						break
					}
				}
			}
			emitted[pick] = true
			out.Instrs = append(out.Instrs, cycle[pick])
			if d := cycle[pick].DefReg(); d >= 0 {
				defined[d] = true
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Evaluate schedules p and measures the PBQP shrinkage.
func Evaluate(p *ate.Program) (*Result, error) {
	before, err := ate.BuildPBQP(p)
	if err != nil {
		return nil, err
	}
	sp, err := ScheduleCycles(p)
	if err != nil {
		return nil, err
	}
	after, err := ate.BuildPBQP(sp)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Program:     sp,
		EdgesBefore: before.NumEdges(),
		EdgesAfter:  after.NumEdges(),
		PairsBefore: ReadAheadOfWritePairs(p),
		PairsAfter:  ReadAheadOfWritePairs(sp),
	}
	for _, e := range before.Edges() {
		for _, c := range e.M.Data {
			if c.IsInf() {
				res.InfBefore++
			}
		}
	}
	for _, e := range after.Edges() {
		for _, c := range e.M.Data {
			if c.IsInf() {
				res.InfAfter++
			}
		}
	}
	return res, nil
}

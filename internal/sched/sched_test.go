package sched

import (
	"testing"

	"pbqprl/internal/ate"
)

func TestScheduledProgramValid(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		prog, _ := ate.Generate(ate.DefaultMachine(), ate.GenConfig{
			Name: "s", NumVRegs: 40, PairRatio: 0.3, HardRatio: 0.4,
			MaxLive: 8, Seed: seed,
		})
		sp, err := ScheduleCycles(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sp.Instrs) != len(prog.Instrs) {
			t.Fatalf("seed %d: instruction count changed", seed)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("seed %d: scheduled program invalid: %v", seed, err)
		}
	}
}

func TestSchedulingPreservesCycleMembership(t *testing.T) {
	prog, _ := ate.Generate(ate.DefaultMachine(), ate.GenConfig{
		Name: "s", NumVRegs: 30, PairRatio: 0.3, HardRatio: 0.4, MaxLive: 8, Seed: 3,
	})
	sp, err := ScheduleCycles(prog)
	if err != nil {
		t.Fatal(err)
	}
	ways := prog.Machine.Ways
	// multiset of opcodes per cycle must be preserved
	for lo := 0; lo < len(prog.Instrs); lo += ways {
		hi := lo + ways
		if hi > len(prog.Instrs) {
			hi = len(prog.Instrs)
		}
		var a, b [8]int
		for i := lo; i < hi; i++ {
			a[int(prog.Instrs[i].Op)]++
			b[int(sp.Instrs[i].Op)]++
		}
		if a != b {
			t.Fatalf("cycle %d: opcode multiset changed", lo/ways)
		}
	}
}

func TestEvaluateShrinksConstraints(t *testing.T) {
	shrunk, grew := 0, 0
	for seed := int64(20); seed < 35; seed++ {
		prog, _ := ate.Generate(ate.DefaultMachine(), ate.GenConfig{
			Name: "s", NumVRegs: 50, PairRatio: 0.3, HardRatio: 0.4,
			MaxLive: 8, Seed: seed,
		})
		res, err := Evaluate(prog)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case res.PairsAfter < res.PairsBefore:
			shrunk++
		case res.PairsAfter > res.PairsBefore:
			grew++
		}
	}
	if shrunk == 0 {
		t.Error("defs-early scheduling never removed a read-ahead-of-write pair")
	}
	t.Logf("read-ahead-of-write pairs shrank on %d/15 programs, grew on %d/15", shrunk, grew)
}

func TestDefsComeEarlier(t *testing.T) {
	prog, _ := ate.Generate(ate.DefaultMachine(), ate.GenConfig{
		Name: "s", NumVRegs: 40, PairRatio: 0.3, HardRatio: 0.4, MaxLive: 8, Seed: 9,
	})
	sp, err := ScheduleCycles(prog)
	if err != nil {
		t.Fatal(err)
	}
	pos := func(p *ate.Program) (sum int) {
		ways := p.Machine.Ways
		for i, in := range p.Instrs {
			if in.DefReg() >= 0 {
				sum += i % ways
			}
		}
		return sum
	}
	if pos(sp) > pos(prog) {
		t.Errorf("defs moved later on average: %d vs %d", pos(sp), pos(prog))
	}
}

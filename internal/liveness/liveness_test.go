package liveness

import (
	"testing"

	"pbqprl/internal/ir"
)

// straightLine: v0 and v1 overlap; v2 starts after v1 dies.
func straightLine() *ir.Func {
	return &ir.Func{
		Name: "sl", NumValues: 4,
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpConst, Def: 1},
			{Op: ir.OpArith, Def: 2, Uses: []ir.Value{0, 1}}, // v0, v1 die here
			{Op: ir.OpArith, Def: 3, Uses: []ir.Value{2}},
			{Op: ir.OpRet, Uses: []ir.Value{3}},
		}}},
	}
}

func TestStraightLineInterference(t *testing.T) {
	info := Analyze(straightLine())
	if !info.Interferes(0, 1) {
		t.Error("v0 and v1 overlap but do not interfere")
	}
	if info.Interferes(0, 3) {
		t.Error("v0 and v3 never overlap")
	}
	if info.Interferes(1, 2) {
		t.Error("v1 dies where v2 is defined; no interference")
	}
}

func TestLoopLiveness(t *testing.T) {
	// v1 defined before the loop, used inside the loop body: it must be
	// live-in and live-out of the header and body.
	f := &ir.Func{
		Name: "loop", NumValues: 4, Params: []ir.Value{0},
		Blocks: []*ir.Block{
			{Name: "entry", Succs: []int{1}, Instrs: []ir.Instr{
				{Op: ir.OpConst, Def: 1},
			}},
			{Name: "header", Succs: []int{2, 3}, LoopDepth: 1, Instrs: []ir.Instr{
				{Op: ir.OpCmp, Def: 2, Uses: []ir.Value{0, 1}},
				{Op: ir.OpBranch, Uses: []ir.Value{2}},
			}},
			{Name: "body", Succs: []int{1}, LoopDepth: 1, Instrs: []ir.Instr{
				{Op: ir.OpStore, Uses: []ir.Value{1, 0}},
			}},
			{Name: "exit", Instrs: []ir.Instr{
				{Op: ir.OpRet, Uses: []ir.Value{1}},
			}},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	info := Analyze(f)
	if !info.LiveIn[1][1] || !info.LiveOut[2][1] {
		t.Error("v1 not live through the loop")
	}
	if !info.Spans[1] {
		t.Error("v1 spans blocks but Spans is false")
	}
	// spill weight: v1 used in header(d1), body(d1), exit(d0), defined in
	// entry(d0): 10 + 10 + 1 + 1 = 22
	if w := info.SpillWeight[1]; w != 22 {
		t.Errorf("spill weight of v1 = %v, want 22", w)
	}
}

func TestMoveDoesNotInterfere(t *testing.T) {
	f := &ir.Func{
		Name: "mv", NumValues: 3,
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpMove, Def: 1, Uses: []ir.Value{0}},
			{Op: ir.OpStore, Uses: []ir.Value{1, 1}},
			{Op: ir.OpRet},
		}}},
	}
	info := Analyze(f)
	if info.Interferes(0, 1) {
		t.Error("move source and destination interfere")
	}
	if !info.MoveRelated[0][1] || !info.MoveRelated[1][0] {
		t.Error("move relation not recorded")
	}
}

func TestMoveSourceLiveAfterDoesInterfere(t *testing.T) {
	f := &ir.Func{
		Name: "mv2", NumValues: 3,
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpMove, Def: 1, Uses: []ir.Value{0}},
			{Op: ir.OpArith, Def: 2, Uses: []ir.Value{0, 1}}, // v0 still live
			{Op: ir.OpRet, Uses: []ir.Value{2}},
		}}},
	}
	info := Analyze(f)
	// v0 stays live past the move, but a move source and destination
	// hold the same data (single-def values), so the classic move
	// exception still applies: no interference, and the pair remains a
	// coalescing candidate.
	if info.Interferes(0, 1) {
		t.Error("move pair must not interfere (same data)")
	}
	if !info.MoveRelated[0][1] {
		t.Error("move relation missing")
	}
	// operands dying at the arith do not interfere with its result
	if info.Interferes(0, 2) || info.Interferes(1, 2) {
		t.Error("dying operands must not interfere with the defined value")
	}
}

func TestParamsInterfere(t *testing.T) {
	f := &ir.Func{
		Name: "params", NumValues: 3, Params: []ir.Value{0, 1},
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpArith, Def: 2, Uses: []ir.Value{0, 1}},
			{Op: ir.OpRet, Uses: []ir.Value{2}},
		}}},
	}
	info := Analyze(f)
	if !info.Interferes(0, 1) {
		t.Error("parameters must interfere")
	}
}

func TestDegree(t *testing.T) {
	info := Analyze(straightLine())
	if d := info.Degree(0); d != 1 {
		t.Errorf("degree(v0) = %d, want 1", d)
	}
}

// Package liveness implements classic backward dataflow liveness over
// the internal/ir CFG, interference-graph construction, and the
// loop-weighted spill costs LLVM-style allocators consume.
package liveness

import (
	"math"

	"pbqprl/internal/ir"
)

// Info is the result of analyzing one function.
type Info struct {
	Func *ir.Func
	// LiveIn and LiveOut are per-block live value sets.
	LiveIn, LiveOut []map[ir.Value]bool
	// Interference is the symmetric adjacency over values: two values
	// interfere when one is live at a definition point of the other
	// (the standard Chaitin condition, with the move exception: a move
	// does not make its source interfere with its destination).
	Interference []map[ir.Value]bool
	// MoveRelated lists, per value, the values it is move-connected to
	// (coalescing / hint candidates).
	MoveRelated []map[ir.Value]bool
	// SpillWeight estimates the dynamic cost of spilling each value:
	// the sum over its defs and uses of 10^loopDepth.
	SpillWeight []float64
	// Spans reports whether a value is live across a block boundary
	// (used by the FAST allocator, which only keeps block-local values
	// in registers).
	Spans []bool
}

// Analyze computes liveness, interference and spill weights for f.
func Analyze(f *ir.Func) *Info {
	n := len(f.Blocks)
	info := &Info{
		Func:         f,
		LiveIn:       make([]map[ir.Value]bool, n),
		LiveOut:      make([]map[ir.Value]bool, n),
		Interference: make([]map[ir.Value]bool, f.NumValues),
		MoveRelated:  make([]map[ir.Value]bool, f.NumValues),
		SpillWeight:  make([]float64, f.NumValues),
		Spans:        make([]bool, f.NumValues),
	}
	for v := 0; v < f.NumValues; v++ {
		info.Interference[v] = make(map[ir.Value]bool)
		info.MoveRelated[v] = make(map[ir.Value]bool)
	}
	for b := 0; b < n; b++ {
		info.LiveIn[b] = make(map[ir.Value]bool)
		info.LiveOut[b] = make(map[ir.Value]bool)
	}

	// backward fixpoint
	changed := true
	for changed {
		changed = false
		for b := n - 1; b >= 0; b-- {
			blk := f.Blocks[b]
			out := make(map[ir.Value]bool)
			for _, s := range blk.Succs {
				for v := range info.LiveIn[s] {
					out[v] = true
				}
			}
			in := make(map[ir.Value]bool, len(out))
			for v := range out {
				in[v] = true
			}
			for i := len(blk.Instrs) - 1; i >= 0; i-- {
				instr := blk.Instrs[i]
				if d := instr.DefValue(); d >= 0 {
					delete(in, d)
				}
				for _, u := range instr.Uses {
					in[u] = true
				}
			}
			if !setsEqual(out, info.LiveOut[b]) || !setsEqual(in, info.LiveIn[b]) {
				info.LiveOut[b] = out
				info.LiveIn[b] = in
				changed = true
			}
		}
	}

	// interference, move relations, weights, span flags
	for b, blk := range f.Blocks {
		weight := math.Pow(10, float64(blk.LoopDepth))
		live := make(map[ir.Value]bool, len(info.LiveOut[b]))
		for v := range info.LiveOut[b] {
			live[v] = true
			info.Spans[v] = true
		}
		for v := range info.LiveIn[b] {
			info.Spans[v] = true
		}
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			instr := blk.Instrs[i]
			if d := instr.DefValue(); d >= 0 {
				info.SpillWeight[d] += weight
				for v := range live {
					if v == d {
						continue
					}
					if instr.Op == ir.OpMove && len(instr.Uses) == 1 && instr.Uses[0] == v {
						continue // move source does not interfere
					}
					addEdge(info.Interference, d, v)
				}
				delete(live, d)
			}
			for _, u := range instr.Uses {
				info.SpillWeight[u] += weight
				live[u] = true
			}
			if instr.Op == ir.OpMove && instr.DefValue() >= 0 && len(instr.Uses) == 1 && instr.Uses[0] != instr.Def {
				info.MoveRelated[instr.Def][instr.Uses[0]] = true
				info.MoveRelated[instr.Uses[0]][instr.Def] = true
			}
		}
	}
	// params interfere with each other and anything live on entry
	entryLive := info.LiveIn[0]
	for _, p := range f.Params {
		for v := range entryLive {
			if v != p {
				addEdge(info.Interference, p, v)
			}
		}
		for _, q := range f.Params {
			if p != q {
				addEdge(info.Interference, p, q)
			}
		}
	}
	return info
}

func addEdge(adj []map[ir.Value]bool, a, b ir.Value) {
	adj[a][b] = true
	adj[b][a] = true
}

func setsEqual(a, b map[ir.Value]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// Interferes reports whether values a and b interfere.
func (i *Info) Interferes(a, b ir.Value) bool { return i.Interference[a][b] }

// Degree returns the interference degree of v.
func (i *Info) Degree(v ir.Value) int { return len(i.Interference[v]) }

package mcts

import (
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/game"
	"pbqprl/internal/gcn"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/tensor"
)

func fig2Graph() *pbqp.Graph {
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, 2})
	g.SetVertexCost(1, cost.Vector{5, 0})
	g.SetVertexCost(2, cost.Vector{0, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{1, 3}, {7, 8}}))
	g.SetEdgeCost(1, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 4}, {9, 6}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 2}, {5, 3}}))
	return g
}

func TestPolicySumsToOne(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	st.SetBaseline(24)
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 30)
	pi := tree.Policy()
	sum := 0.0
	for _, v := range pi {
		if v < 0 {
			t.Fatalf("negative policy %v", pi)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("policy sum = %v", sum)
	}
}

func TestFindsOptimalMoveOnFig2(t *testing.T) {
	// with baseline 12 only cost-11 colorings win; MCTS with enough
	// simulations must prefer color 0 at the first vertex.
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	st.SetBaseline(12)
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 200)
	pi := tree.Policy()
	if pi[0] <= pi[1] {
		t.Errorf("policy prefers suboptimal color: %v", pi)
	}
}

func TestNodesCountExpansionsOnly(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 100)
	// complete tree for n=3, m=2 has 1+2+4+8 = 15 states; terminal
	// revisits must not inflate the count
	if tree.Nodes() > 15 {
		t.Errorf("nodes = %d, want <= 15", tree.Nodes())
	}
	if tree.Nodes() < 7 {
		t.Errorf("nodes = %d, implausibly low after 100 simulations", tree.Nodes())
	}
}

func TestStateRestoredAfterRun(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 50)
	if st.Turn() != 0 || st.Acc() != 0 {
		t.Errorf("state mutated: turn=%d acc=%v", st.Turn(), st.Acc())
	}
}

func TestAdvanceReusesSubtree(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 50)
	before := tree.Nodes()
	st.Play(0)
	tree.Advance(0)
	// the advanced root was already expanded; one more run only adds
	// new leaves below it
	tree.Run(st, 10)
	if tree.Nodes() == before+11 {
		t.Error("no subtree reuse: every simulation expanded a node")
	}
	pi := tree.Policy()
	if len(pi) != 2 {
		t.Fatalf("policy len = %d", len(pi))
	}
}

func TestBackReturnsToParent(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{RetainParents: true})
	tree.Run(st, 20)
	rootPi := tree.Policy()
	st.Play(1)
	tree.Advance(1)
	tree.Run(st, 5)
	st.Undo()
	tree.Back()
	pi := tree.Policy()
	for i := range pi {
		if math.Abs(pi[i]-rootPi[i]) > 0.5 {
			t.Errorf("policy wildly different after Back: %v vs %v", pi, rootPi)
		}
	}
}

func TestBackAtRootPanics(t *testing.T) {
	tree := New(Uniform{}, 2, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.Back()
}

func TestDisableRootAction(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 50)
	tree.DisableRootAction(0)
	pi := tree.Policy()
	if pi[0] != 0 {
		t.Errorf("disabled action has probability %v", pi[0])
	}
	if pi[1] == 0 {
		t.Error("remaining action lost probability")
	}
	if !tree.RootHasMove() {
		t.Error("RootHasMove false with one action left")
	}
	tree.DisableRootAction(1)
	if tree.RootHasMove() {
		t.Error("RootHasMove true with all actions disabled")
	}
	// further simulations must not crash
	tree.Run(st, 5)
}

func TestIllegalColorsNeverSelected(t *testing.T) {
	g := pbqp.New(2, 3)
	g.SetVertexCost(0, cost.Vector{cost.Inf, 0, cost.Inf})
	g.SetVertexCost(1, cost.Vector{0, 0, 0})
	st := game.New(g, []int{0, 1})
	tree := New(Uniform{}, 3, Config{})
	tree.Run(st, 40)
	pi := tree.Policy()
	if pi[0] != 0 || pi[2] != 0 {
		t.Errorf("illegal colors got probability: %v", pi)
	}
	if math.Abs(pi[1]-1) > 1e-9 {
		t.Errorf("legal color probability = %v", pi[1])
	}
}

func TestDeadEndsPropagateLoss(t *testing.T) {
	// vertex 0 colored with color 0 kills vertex 1 (its only finite
	// color conflicts); MCTS must learn to prefer color 1.
	g := pbqp.New(2, 2)
	g.SetVertexCost(0, cost.Vector{0, 0})
	g.SetVertexCost(1, cost.Vector{0, cost.Inf})
	mat := cost.NewMatrix(2, 2)
	mat.Set(0, 0, cost.Inf) // (v0=0, v1=0) forbidden
	g.SetEdgeCost(0, 1, mat)
	st := game.New(g, []int{0, 1})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 100)
	pi := tree.Policy()
	if pi[1] <= pi[0] {
		t.Errorf("policy did not avoid the dead end: %v", pi)
	}
}

// valueBiasedEval gives a high prior to a fixed color, to test that the
// prior steers early exploration.
type valueBiasedEval struct{ favorite int }

func (e valueBiasedEval) Evaluate(view gcn.View) (tensor.Vec, float64) {
	vec := view.Vec(0)
	prior := make(tensor.Vec, len(vec))
	for i, c := range vec {
		if !c.IsInf() {
			prior[i] = 0.05
		}
	}
	if !vec[e.favorite].IsInf() {
		prior[e.favorite] = 1
	}
	// unnormalized is fine for the UCB term
	return prior, 0
}

func TestPriorSteersFirstSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 6, M: 4, PEdge: 0.4, PInf: 0})
	st := game.New(g, game.MakeOrder(g, game.OrderFixed, nil))
	tree := New(valueBiasedEval{favorite: 2}, 4, Config{})
	tree.Run(st, 2) // root expansion + one selection
	pi := tree.Policy()
	if pi[2] != 1 {
		t.Errorf("first simulation did not follow the prior: %v", pi)
	}
}

func TestPolicyBeforeRunIsZero(t *testing.T) {
	tree := New(Uniform{}, 3, Config{})
	pi := tree.Policy()
	for _, v := range pi {
		if v != 0 {
			t.Errorf("policy before Run = %v", pi)
		}
	}
}

// trapGraph builds a graph whose first decision offers a poisoned
// branch: after v0=0 the state is still alive, but every coloring of
// vertex 1 then strangles vertex 2 — so the subtree under v0=0 is
// exhausted after two expansions. v0=1 opens a free binary tree over
// `chain` further vertices (all costs zero, no other edges).
func trapGraph(chain int) (*pbqp.Graph, []int) {
	n := 3 + chain
	g := pbqp.New(n, 2)
	for i := 0; i < n; i++ {
		g.SetVertexCost(i, cost.Vector{0, 0})
	}
	m02 := cost.NewMatrix(2, 2)
	m02.Set(0, 0, cost.Inf) // v0=0 kills v2's color 0
	g.SetEdgeCost(0, 2, m02)
	m12 := cost.NewMatrix(2, 2)
	m12.Set(0, 1, cost.Inf) // any coloring of v1 kills v2's color 1
	m12.Set(1, 1, cost.Inf)
	g.SetEdgeCost(1, 2, m12)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return g, order
}

// rootBiasedEval puts nearly all prior mass on action 0 at the root
// state (recognized by its full vertex count) and is uniform elsewhere,
// so the search keeps being pulled toward the root's poisoned branch.
type rootBiasedEval struct{ full int }

func (e rootBiasedEval) Evaluate(view gcn.View) (tensor.Vec, float64) {
	vec := view.Vec(0)
	prior := make(tensor.Vec, len(vec))
	for i, c := range vec {
		if !c.IsInf() {
			prior[i] = 1 / float64(len(vec))
		}
	}
	if view.N() == e.full && !vec[0].IsInf() {
		prior[0], prior[1] = 0.99, 0.01
	}
	return prior, 0
}

// TestExhaustedSubtreeClosed is the regression test for the dead-end
// marking bug: once every child of a node is a known dead end,
// selectAction returns -1 there — and before the fix the node was never
// marked, so the parent kept re-descending into the spent subtree and
// those simulations expanded nothing. With the marking, at most a
// couple of simulations are spent discovering the exhaustion and every
// other one expands a fresh node.
func TestExhaustedSubtreeClosed(t *testing.T) {
	const k = 400
	g, order := trapGraph(40)
	st := game.New(g, order)
	// sanity: the trap is live after v0=0 and springs on any v1 color
	st.Play(0)
	if st.DeadEnd() {
		t.Fatal("trap sprang one move early")
	}
	st.Play(0)
	if !st.DeadEnd() {
		t.Fatal("trap graph is not a trap")
	}
	st.Undo()
	st.Undo()

	tree := New(rootBiasedEval{full: st.N()}, 2, Config{})
	tree.Run(st, k)
	// expansions: k simulations minus the one that discovers the
	// exhaustion of the v0=0 subtree (plus slack for selection-order
	// shifts). The unfixed planner wastes ~1.2·√k simulations
	// re-descending and lands far below this bound.
	if tree.Nodes() < k-4 {
		t.Errorf("nodes = %d after %d simulations, want >= %d (budget burned on an exhausted subtree)", tree.Nodes(), k, k-4)
	}
	if pi := tree.Policy(); pi[0] != 0 {
		t.Errorf("exhausted branch still has policy mass: %v", pi)
	}
}

// TestForcedDeadEndClosesRoot drives the marking all the way up: when
// every branch of the root dead-ends, the root itself must become
// terminal, with an empty policy and no open move, and further
// simulations must not expand anything.
func TestForcedDeadEndClosesRoot(t *testing.T) {
	g := pbqp.New(3, 2)
	for i := 0; i < 3; i++ {
		g.SetVertexCost(i, cost.Vector{0, 0})
	}
	m02 := cost.NewMatrix(2, 2)
	m02.Set(0, 0, cost.Inf) // either v0 color kills v2's color 0
	m02.Set(1, 0, cost.Inf)
	g.SetEdgeCost(0, 2, m02)
	m12 := cost.NewMatrix(2, 2)
	m12.Set(0, 1, cost.Inf) // any v1 color kills v2's color 1
	m12.Set(1, 1, cost.Inf)
	g.SetEdgeCost(1, 2, m12)

	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 100)
	// reachable states: root, 2 after v0, 4 dead ends after v1
	if tree.Nodes() > 7 {
		t.Errorf("nodes = %d, want <= 7 on a 7-state graph", tree.Nodes())
	}
	if tree.RootHasMove() {
		t.Error("root still reports an open move with every branch exhausted")
	}
	for a, p := range tree.Policy() {
		if p != 0 {
			t.Errorf("policy[%d] = %v on a fully dead root", a, p)
		}
	}
	before := tree.Nodes()
	tree.Run(st, 50)
	if tree.Nodes() != before {
		t.Errorf("closed root still expands nodes: %d -> %d", before, tree.Nodes())
	}
}

// TestAdvanceDetachesParent covers the memory fix: without
// RetainParents, Advance must cut the link to the abandoned parent and
// its sibling subtrees so they can be collected; Back is then invalid.
func TestAdvanceDetachesParent(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 50)
	old := tree.root
	st.Play(0)
	tree.Advance(0)
	if tree.root.parent != nil {
		t.Error("advanced root keeps a parent pointer without RetainParents")
	}
	if old.children != nil {
		t.Error("abandoned parent keeps its children reachable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Back after a detaching Advance should panic")
		}
	}()
	tree.Back()
}

// TestRetainParentsKeepsChain is the backtracking contract: with
// RetainParents, Advance preserves the chain and Back walks it.
func TestRetainParentsKeepsChain(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{RetainParents: true})
	tree.Run(st, 30)
	old := tree.root
	st.Play(0)
	tree.Advance(0)
	if tree.root.parent != old {
		t.Fatal("RetainParents did not keep the parent link")
	}
	st.Undo()
	tree.Back()
	if tree.root != old {
		t.Fatal("Back did not return to the abandoned root")
	}
}

func TestUniformEvaluator(t *testing.T) {
	g := pbqp.New(1, 4)
	g.SetVertexCost(0, cost.Vector{0, cost.Inf, 0, cost.Inf})
	prior, v := Uniform{}.Evaluate(gcn.NewGraphView(g))
	if prior[0] != 0.5 || prior[2] != 0.5 || prior[1] != 0 || prior[3] != 0 {
		t.Errorf("uniform prior = %v", prior)
	}
	if v != 0 {
		t.Errorf("uniform value = %v", v)
	}
	g2 := pbqp.New(1, 2)
	g2.SetVertexCost(0, cost.NewInfVector(2))
	_, v = Uniform{}.Evaluate(gcn.NewGraphView(g2))
	if v != -1 {
		t.Errorf("dead-end uniform value = %v", v)
	}
}

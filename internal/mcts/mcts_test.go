package mcts

import (
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/game"
	"pbqprl/internal/gcn"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/tensor"
)

func fig2Graph() *pbqp.Graph {
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, 2})
	g.SetVertexCost(1, cost.Vector{5, 0})
	g.SetVertexCost(2, cost.Vector{0, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{1, 3}, {7, 8}}))
	g.SetEdgeCost(1, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 4}, {9, 6}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 2}, {5, 3}}))
	return g
}

func TestPolicySumsToOne(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	st.SetBaseline(24)
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 30)
	pi := tree.Policy()
	sum := 0.0
	for _, v := range pi {
		if v < 0 {
			t.Fatalf("negative policy %v", pi)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("policy sum = %v", sum)
	}
}

func TestFindsOptimalMoveOnFig2(t *testing.T) {
	// with baseline 12 only cost-11 colorings win; MCTS with enough
	// simulations must prefer color 0 at the first vertex.
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	st.SetBaseline(12)
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 200)
	pi := tree.Policy()
	if pi[0] <= pi[1] {
		t.Errorf("policy prefers suboptimal color: %v", pi)
	}
}

func TestNodesCountExpansionsOnly(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 100)
	// complete tree for n=3, m=2 has 1+2+4+8 = 15 states; terminal
	// revisits must not inflate the count
	if tree.Nodes() > 15 {
		t.Errorf("nodes = %d, want <= 15", tree.Nodes())
	}
	if tree.Nodes() < 7 {
		t.Errorf("nodes = %d, implausibly low after 100 simulations", tree.Nodes())
	}
}

func TestStateRestoredAfterRun(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 50)
	if st.Turn() != 0 || st.Acc() != 0 {
		t.Errorf("state mutated: turn=%d acc=%v", st.Turn(), st.Acc())
	}
}

func TestAdvanceReusesSubtree(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 50)
	before := tree.Nodes()
	st.Play(0)
	tree.Advance(0)
	// the advanced root was already expanded; one more run only adds
	// new leaves below it
	tree.Run(st, 10)
	if tree.Nodes() == before+11 {
		t.Error("no subtree reuse: every simulation expanded a node")
	}
	pi := tree.Policy()
	if len(pi) != 2 {
		t.Fatalf("policy len = %d", len(pi))
	}
}

func TestBackReturnsToParent(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 20)
	rootPi := tree.Policy()
	st.Play(1)
	tree.Advance(1)
	tree.Run(st, 5)
	st.Undo()
	tree.Back()
	pi := tree.Policy()
	for i := range pi {
		if math.Abs(pi[i]-rootPi[i]) > 0.5 {
			t.Errorf("policy wildly different after Back: %v vs %v", pi, rootPi)
		}
	}
}

func TestBackAtRootPanics(t *testing.T) {
	tree := New(Uniform{}, 2, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.Back()
}

func TestDisableRootAction(t *testing.T) {
	g := fig2Graph()
	st := game.New(g, []int{0, 1, 2})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 50)
	tree.DisableRootAction(0)
	pi := tree.Policy()
	if pi[0] != 0 {
		t.Errorf("disabled action has probability %v", pi[0])
	}
	if pi[1] == 0 {
		t.Error("remaining action lost probability")
	}
	if !tree.RootHasMove() {
		t.Error("RootHasMove false with one action left")
	}
	tree.DisableRootAction(1)
	if tree.RootHasMove() {
		t.Error("RootHasMove true with all actions disabled")
	}
	// further simulations must not crash
	tree.Run(st, 5)
}

func TestIllegalColorsNeverSelected(t *testing.T) {
	g := pbqp.New(2, 3)
	g.SetVertexCost(0, cost.Vector{cost.Inf, 0, cost.Inf})
	g.SetVertexCost(1, cost.Vector{0, 0, 0})
	st := game.New(g, []int{0, 1})
	tree := New(Uniform{}, 3, Config{})
	tree.Run(st, 40)
	pi := tree.Policy()
	if pi[0] != 0 || pi[2] != 0 {
		t.Errorf("illegal colors got probability: %v", pi)
	}
	if math.Abs(pi[1]-1) > 1e-9 {
		t.Errorf("legal color probability = %v", pi[1])
	}
}

func TestDeadEndsPropagateLoss(t *testing.T) {
	// vertex 0 colored with color 0 kills vertex 1 (its only finite
	// color conflicts); MCTS must learn to prefer color 1.
	g := pbqp.New(2, 2)
	g.SetVertexCost(0, cost.Vector{0, 0})
	g.SetVertexCost(1, cost.Vector{0, cost.Inf})
	mat := cost.NewMatrix(2, 2)
	mat.Set(0, 0, cost.Inf) // (v0=0, v1=0) forbidden
	g.SetEdgeCost(0, 1, mat)
	st := game.New(g, []int{0, 1})
	tree := New(Uniform{}, 2, Config{})
	tree.Run(st, 100)
	pi := tree.Policy()
	if pi[1] <= pi[0] {
		t.Errorf("policy did not avoid the dead end: %v", pi)
	}
}

// valueBiasedEval gives a high prior to a fixed color, to test that the
// prior steers early exploration.
type valueBiasedEval struct{ favorite int }

func (e valueBiasedEval) Evaluate(view gcn.View) (tensor.Vec, float64) {
	vec := view.Vec(0)
	prior := make(tensor.Vec, len(vec))
	for i, c := range vec {
		if !c.IsInf() {
			prior[i] = 0.05
		}
	}
	if !vec[e.favorite].IsInf() {
		prior[e.favorite] = 1
	}
	// unnormalized is fine for the UCB term
	return prior, 0
}

func TestPriorSteersFirstSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 6, M: 4, PEdge: 0.4, PInf: 0})
	st := game.New(g, game.MakeOrder(g, game.OrderFixed, nil))
	tree := New(valueBiasedEval{favorite: 2}, 4, Config{})
	tree.Run(st, 2) // root expansion + one selection
	pi := tree.Policy()
	if pi[2] != 1 {
		t.Errorf("first simulation did not follow the prior: %v", pi)
	}
}

func TestPolicyBeforeRunIsZero(t *testing.T) {
	tree := New(Uniform{}, 3, Config{})
	pi := tree.Policy()
	for _, v := range pi {
		if v != 0 {
			t.Errorf("policy before Run = %v", pi)
		}
	}
}

func TestUniformEvaluator(t *testing.T) {
	g := pbqp.New(1, 4)
	g.SetVertexCost(0, cost.Vector{0, cost.Inf, 0, cost.Inf})
	prior, v := Uniform{}.Evaluate(gcn.NewGraphView(g))
	if prior[0] != 0.5 || prior[2] != 0.5 || prior[1] != 0 || prior[3] != 0 {
		t.Errorf("uniform prior = %v", prior)
	}
	if v != 0 {
		t.Errorf("uniform value = %v", v)
	}
	g2 := pbqp.New(1, 2)
	g2.SetVertexCost(0, cost.NewInfVector(2))
	_, v = Uniform{}.Evaluate(gcn.NewGraphView(g2))
	if v != -1 {
		t.Errorf("dead-end uniform value = %v", v)
	}
}

package mcts

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/game"
	"pbqprl/internal/gcn"
	"pbqprl/internal/net"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/tensor"
)

// batchWrap lifts any Evaluator to a BatchEvaluator by looping — which
// is trivially per-view bit-identical — and records the microbatch
// sizes it served.
type batchWrap struct {
	Evaluator
	sizes []int
}

func (b *batchWrap) EvaluateBatch(views []gcn.View) ([]tensor.Vec, []float64) {
	b.sizes = append(b.sizes, len(views))
	priors := make([]tensor.Vec, len(views))
	values := make([]float64, len(views))
	for i, v := range views {
		priors[i], values[i] = b.Evaluate(v)
	}
	return priors, values
}

// compareTrees asserts node-for-node, bit-for-bit equality of the two
// trees' search statistics. Speculation may have created extra
// never-visited (unexpanded, zero-stat) children in the batched tree;
// those are equivalent to a nil child.
func compareTrees(t *testing.T, want, got *node, path string) {
	t.Helper()
	if want.expanded != got.expanded || want.terminal != got.terminal || want.deadEnd != got.deadEnd {
		t.Fatalf("%s: flags differ: want (%v %v %v), got (%v %v %v)", path,
			want.expanded, want.terminal, want.deadEnd, got.expanded, got.terminal, got.deadEnd)
	}
	if !want.expanded {
		return
	}
	if math.Float64bits(want.value) != math.Float64bits(got.value) {
		t.Fatalf("%s: value %x != %x", path, math.Float64bits(got.value), math.Float64bits(want.value))
	}
	if len(want.prior) != len(got.prior) {
		t.Fatalf("%s: prior lengths differ", path)
	}
	for a := range want.prior {
		if math.Float64bits(want.prior[a]) != math.Float64bits(got.prior[a]) {
			t.Fatalf("%s: prior[%d] %x != %x", path, a, math.Float64bits(got.prior[a]), math.Float64bits(want.prior[a]))
		}
	}
	for a := range want.n {
		if want.n[a] != got.n[a] {
			t.Fatalf("%s: n[%d] = %d, want %d", path, a, got.n[a], want.n[a])
		}
		if math.Float64bits(want.q[a]) != math.Float64bits(got.q[a]) {
			t.Fatalf("%s: q[%d] %x != %x", path, a, math.Float64bits(got.q[a]), math.Float64bits(want.q[a]))
		}
	}
	for a := range want.children {
		wc, gc := want.children[a], got.children[a]
		switch {
		case wc == nil && gc == nil:
		case wc == nil:
			if gc.expanded {
				t.Fatalf("%s: child %d expanded only in batched tree", path, a)
			}
		case gc == nil:
			if wc.expanded {
				t.Fatalf("%s: child %d expanded only in sequential tree", path, a)
			}
		default:
			compareTrees(t, wc, gc, path+"/"+string(rune('0'+a)))
		}
	}
}

func randomTrapGame(seed int64) (*game.State, int) {
	rng := rand.New(rand.NewSource(seed))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 14, M: 4, PEdge: 0.4, HardRatio: 0.5, PEdgeInf: 0.4,
	})
	order := rng.Perm(14)
	return game.New(g, order), 4
}

// TestBatchedSearchBitIdenticalToSequential is the determinism
// contract of Config.BatchLeaves: for every batch width, the tree
// after k simulations — statistics, priors, values, node count — is
// bit-identical to the sequential search's.
func TestBatchedSearchBitIdenticalToSequential(t *testing.T) {
	cases := []struct {
		name string
		st   func() *game.State
		m    int
		eval Evaluator
	}{
		{"fig2", func() *game.State { return game.New(fig2Graph(), []int{0, 1, 2}) }, 2, Uniform{}},
		{"trap", func() *game.State {
			g, order := trapGraph(12)
			return game.New(g, order)
		}, 2, rootBiasedEval{full: 15}},
		{"zeroinf", func() *game.State { st, _ := randomTrapGame(301); return st }, 4, Uniform{}},
	}
	const k = 150
	for _, c := range cases {
		ref := New(c.eval, c.m, Config{})
		stRef := c.st()
		ref.Run(stRef, k)
		for _, bl := range []int{1, 2, 4, 8, 32} {
			tree := New(&batchWrap{Evaluator: c.eval}, c.m, Config{BatchLeaves: bl})
			st := c.st()
			if got := tree.RunCtx(context.Background(), st, k); got != k {
				t.Fatalf("%s bl=%d: ran %d simulations, want %d", c.name, bl, got, k)
			}
			if st.Turn() != 0 || st.Acc() != 0 {
				t.Fatalf("%s bl=%d: state not restored", c.name, bl)
			}
			if ref.Nodes() != tree.Nodes() {
				t.Fatalf("%s bl=%d: nodes %d, want %d", c.name, bl, tree.Nodes(), ref.Nodes())
			}
			compareTrees(t, ref.root, tree.root, c.name)
			refPi, pi := ref.Policy(), tree.Policy()
			for a := range refPi {
				if math.Float64bits(refPi[a]) != math.Float64bits(pi[a]) {
					t.Fatalf("%s bl=%d: policy[%d] differs", c.name, bl, a)
				}
			}
		}
	}
}

// TestBatchedSearchWithNetEngine runs the same contract end to end
// through the real network's batched engine (net.PBQPNet implements
// BatchEvaluator): tree statistics must match the sequential search on
// the same network bit for bit.
func TestBatchedSearchWithNetEngine(t *testing.T) {
	st, m := randomTrapGame(302)
	n := net.New(net.Config{M: m, GCNLayers: 2, Hidden: 16, Blocks: 1, Seed: 303})

	ref := New(n, m, Config{})
	ref.Run(st, 120)

	st2, _ := randomTrapGame(302)
	tree := New(n, m, Config{BatchLeaves: 8})
	tree.Run(st2, 120)

	if ref.Nodes() != tree.Nodes() {
		t.Fatalf("nodes %d, want %d", tree.Nodes(), ref.Nodes())
	}
	compareTrees(t, ref.root, tree.root, "root")
}

// TestBatchingActuallyBatches guards against the batching silently
// degenerating to per-leaf flushes: with a wide-enough tree most
// flushes must coalesce several leaves.
func TestBatchingActuallyBatches(t *testing.T) {
	st, m := randomTrapGame(304)
	bw := &batchWrap{Evaluator: Uniform{}}
	tree := New(bw, m, Config{BatchLeaves: 16})
	tree.Run(st, 200)
	most := 0
	for _, s := range bw.sizes {
		if s > most {
			most = s
		}
	}
	if most < 4 {
		t.Fatalf("largest microbatch = %d leaves, batching degenerated (sizes %v)", most, bw.sizes)
	}
}

// TestBatchedExhaustedSubtree re-runs the exhausted-subtree regression
// under leaf batching: the closed-subtree marking must survive
// speculation and replay.
func TestBatchedExhaustedSubtree(t *testing.T) {
	const k = 400
	g, order := trapGraph(40)
	st := game.New(g, order)
	tree := New(&batchWrap{Evaluator: rootBiasedEval{full: st.N()}}, 2, Config{BatchLeaves: 8})
	tree.Run(st, k)
	if tree.Nodes() < k-4 {
		t.Errorf("nodes = %d after %d simulations, want >= %d (budget burned on an exhausted subtree)", tree.Nodes(), k, k-4)
	}
	if pi := tree.Policy(); pi[0] != 0 {
		t.Errorf("exhausted branch still has policy mass: %v", pi)
	}
}

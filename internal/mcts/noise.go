package mcts

import (
	"math"
	"math/rand"
)

// AddRootNoise mixes Dirichlet(alpha) noise into the root prior over
// the currently open actions: p ← (1−frac)·p + frac·η, the AlphaZero
// self-play exploration mechanism. It is a no-op on an unexpanded or
// terminal root. Typical values: alpha 0.3–1.0, frac 0.25.
func (t *Tree) AddRootNoise(rng *rand.Rand, alpha, frac float64) {
	nd := t.root
	if !nd.expanded || nd.terminal {
		return
	}
	var open []int
	for a := 0; a < t.m; a++ {
		if nd.actionOpen(a) {
			open = append(open, a)
		}
	}
	if len(open) < 2 {
		return
	}
	noise := dirichlet(rng, alpha, len(open))
	for i, a := range open {
		nd.prior[a] = (1-frac)*nd.prior[a] + frac*noise[i]
	}
}

// dirichlet samples a Dirichlet(alpha, ..., alpha) vector of length n
// by normalizing Gamma(alpha, 1) draws.
func dirichlet(rng *rand.Rand, alpha float64, n int) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	//pbqpvet:ignore floatcmp gamma samples are non-negative; an exactly-zero sum means every draw underflowed
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) with the Marsaglia–Tsang
// method (with the standard boost for shape < 1).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a)
		u := rng.Float64()
		//pbqpvet:ignore floatcmp rng.Float64 can return exactly 0, which the open-interval gamma transform must exclude
		if u == 0 {
			u = 1e-300
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

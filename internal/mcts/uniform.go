package mcts

import (
	"pbqprl/internal/gcn"
	"pbqprl/internal/tensor"
)

// Uniform is an Evaluator with a uniform prior over legal colors and a
// zero value estimate: MCTS guided by it degenerates to plain UCT. It
// serves as the untrained-network baseline and keeps tests independent
// of the neural network.
type Uniform struct{}

// Evaluate implements Evaluator.
func (Uniform) Evaluate(view gcn.View) (tensor.Vec, float64) {
	vec := view.Vec(0)
	prior := make(tensor.Vec, len(vec))
	n := 0
	for _, c := range vec {
		if !c.IsInf() {
			n++
		}
	}
	if n == 0 {
		return prior, -1
	}
	p := 1 / float64(n)
	for i, c := range vec {
		if !c.IsInf() {
			prior[i] = p
		}
	}
	return prior, 0
}

package mcts

import (
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/game"
	"pbqprl/internal/randgraph"
)

func TestGammaSamplePositiveAndMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []float64{0.3, 0.5, 1, 2, 5} {
		sum := 0.0
		const n = 5000
		for i := 0; i < n; i++ {
			x := gammaSample(rng, shape)
			if x <= 0 || math.IsNaN(x) {
				t.Fatalf("shape %v: sample %v", shape, x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.15*shape+0.05 {
			t.Errorf("shape %v: mean %v, want ≈ shape", shape, mean)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		d := dirichlet(rng, 0.5, 5)
		sum := 0.0
		for _, x := range d {
			if x < 0 {
				t.Fatal("negative component")
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sum = %v", sum)
		}
	}
}

func TestAddRootNoisePerturbsOnlyOpenActions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 6, M: 4, PEdge: 0.4, PInf: 0})
	st := game.New(g, game.MakeOrder(g, game.OrderFixed, nil))
	tree := New(Uniform{}, 4, Config{})
	tree.Run(st, 10)
	before := tree.RootPrior().Clone()
	tree.DisableRootAction(2)
	tree.AddRootNoise(rng, 0.5, 0.25)
	after := tree.RootPrior()
	if after[2] != before[2] {
		t.Error("disabled action's prior changed")
	}
	changed := false
	sum := 0.0
	for a, p := range after {
		if a != 2 && p != before[a] {
			changed = true
		}
		if a != 2 {
			sum += p
		}
	}
	if !changed {
		t.Error("noise changed nothing")
	}
	if sum <= 0 {
		t.Error("priors vanished")
	}
}

func TestAddRootNoiseNoopOnUnexpandedRoot(t *testing.T) {
	tree := New(Uniform{}, 3, Config{})
	tree.AddRootNoise(rand.New(rand.NewSource(4)), 0.5, 0.25) // must not panic
}

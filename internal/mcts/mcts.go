// Package mcts implements the paper's Monte-Carlo tree search planner
// (Section IV-C, Algorithm 1): PUCT selection with the upper confidence
// bound of Equation 2, expansion of one leaf per simulation, a neural
// roll-out (the DNN evaluates new leaves; terminal states are scored by
// the game), and back-propagation of the leaf value along the selected
// path. The visit-count policy of Equation 3 is read off the root after
// k simulations, and the tree is reused across moves via Advance (and
// across take-backs via Back, which the backtracking solver uses).
package mcts

import (
	"context"
	"math"

	"pbqprl/internal/game"
	"pbqprl/internal/gcn"
	"pbqprl/internal/tensor"
)

// Evaluator supplies priors and values for non-terminal leaves; it is
// implemented by *net.PBQPNet.
type Evaluator interface {
	Evaluate(view gcn.View) (prior tensor.Vec, value float64)
}

// BatchEvaluator is an Evaluator that can serve many views in one
// pass. Implementations must be per-view bit-identical to their scalar
// Evaluate (as *net.PBQPNet is), so that batched search reproduces the
// scalar search exactly; see Config.BatchLeaves.
type BatchEvaluator interface {
	Evaluator
	EvaluateBatch(views []gcn.View) (priors []tensor.Vec, values []float64)
}

// Config tunes the search.
type Config struct {
	// CPuct is the exploration constant of Equation 2 (default 1.25).
	CPuct float64
	// Eps is the small constant under the square root of Equation 2
	// that lets the prior drive the very first selection (default 1e-3).
	Eps float64
	// HeuristicValue replaces the DNN value at leaf evaluation with
	// the game's lower-bound heuristic (see game.State.HeuristicValue);
	// the DNN still supplies the priors. Used for minimization
	// inference, where games are far deeper than the simulation budget
	// and a weakly trained V-Net provides no usable signal.
	HeuristicValue bool
	// RetainParents keeps the abandoned parent (and its sibling
	// subtrees) reachable across Advance so that Back can walk the
	// chain upward — required by the backtracking solver, which
	// re-roots at the parent after a dead end. Off by default: Advance
	// then detaches the new root, releasing everything above and beside
	// it to the garbage collector, so per-episode memory is bounded by
	// the live subtree instead of growing with game depth.
	RetainParents bool
	// BatchLeaves collects up to this many simulations' leaf states
	// per flush and evaluates them through the evaluator's batched
	// path (when it implements BatchEvaluator) before replaying the
	// simulations against the cached results. Leaves are gathered by
	// speculative descents under virtual loss; the replay is the
	// unchanged scalar simulation loop, so the resulting tree is
	// bit-identical to the BatchLeaves == 1 (purely sequential)
	// search — see DESIGN.md §10. Values ≤ 1, or an evaluator without
	// a batched path, select the sequential loop.
	BatchLeaves int
}

func (c Config) withDefaults() Config {
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if c.CPuct == 0 {
		c.CPuct = 1.25
	}
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if c.Eps == 0 {
		c.Eps = 1e-3
	}
	return c
}

// node is one state in the partial game tree. Edge statistics (Q, N,
// prior) are stored on the parent, indexed by action.
type node struct {
	parent   *node
	expanded bool
	terminal bool
	deadEnd  bool    // terminal because the reduced graph is stuck
	value    float64 // v̂ from the DNN, or the terminal game value
	prior    tensor.Vec
	legal    []bool
	disabled []bool // actions masked by the backtracking solver
	n        []int
	q        []float64
	children []*node

	// leaf-batching state (see Tree.speculate): a pending evaluation
	// stashed for expand, and the already-collected marker that
	// deduplicates leaves within one speculation round. The stash stays
	// valid indefinitely — a node's state is fixed by its path from the
	// root, so the evaluation cannot go stale.
	hasPend   bool
	pendPrior tensor.Vec
	pendValue float64
	specSeen  bool
}

// actionOpen reports whether action a of nd is selectable: legal, not
// masked, and not leading to a child already known to be a dead end.
// (The graph manager detects dead ends on transition, so the planner
// never walks into one twice.)
func (nd *node) actionOpen(a int) bool {
	if !nd.legal[a] || nd.disabled[a] {
		return false
	}
	if c := nd.children[a]; c != nil && c.expanded && c.deadEnd {
		return false
	}
	return true
}

// Tree is an MCTS instance bound to one game.
type Tree struct {
	cfg   Config
	eval  Evaluator
	root  *node
	m     int
	nodes int64

	// reusable speculation buffers (RunCtx leaf batching)
	specVirt   []specStep
	specLeaves []*node
	specViews  []gcn.View
}

// specStep records one virtual visit taken during speculation, to be
// reverted before replay.
type specStep struct {
	nd *node
	a  int
}

// New creates an empty tree for a game with m colors.
func New(eval Evaluator, m int, cfg Config) *Tree {
	return &Tree{cfg: cfg.withDefaults(), eval: eval, root: &node{}, m: m}
}

// Nodes returns the total number of nodes (states) generated in the
// game tree so far — the paper's Figure 6 metric.
func (t *Tree) Nodes() int64 { return t.nodes }

// Run performs k simulations (Algorithm 1) from the current root, which
// must correspond to state s. The state is mutated during simulation
// and restored before Run returns.
func (t *Tree) Run(s *game.State, k int) {
	t.RunCtx(context.Background(), s, k)
}

// RunCtx is Run under a context: the context is polled before every
// simulation, so cancellation lands within one simulation's latency
// (one root-to-leaf descent plus one evaluator call). It returns the
// number of simulations actually performed; the tree and state are
// always left consistent, partial batches simply carry less-visited
// root statistics.
//
// With Config.BatchLeaves > 1 and a BatchEvaluator, simulations run in
// flushes: up to BatchLeaves speculative descents collect distinct
// unexpanded leaves, one batched evaluation stashes their results on
// the nodes, and the unchanged sequential loop then replays the
// simulations, consuming the stashes in expand. Virtual visits taken
// during speculation are fully reverted before replay, so the tree
// statistics — and therefore the whole search — are bit-identical to
// the sequential search. Replayed simulations that reach a leaf
// without a stash (the replayed selection drifted from the
// speculation) fall back to the scalar evaluator, which returns the
// same bits; stashes left unconsumed stay valid for later simulations.
func (t *Tree) RunCtx(ctx context.Context, s *game.State, k int) int {
	be, batched := t.eval.(BatchEvaluator)
	if !batched || t.cfg.BatchLeaves <= 1 {
		for i := 0; i < k; i++ {
			if ctx.Err() != nil {
				return i
			}
			t.simulate(s, t.root)
		}
		return k
	}
	done := 0
	for done < k {
		if ctx.Err() != nil {
			return done
		}
		flush := k - done
		if flush > t.cfg.BatchLeaves {
			flush = t.cfg.BatchLeaves
		}
		t.speculate(s, flush, be)
		for i := 0; i < flush; i++ {
			if ctx.Err() != nil {
				return done
			}
			t.simulate(s, t.root)
			done++
		}
	}
	return done
}

// speculate performs flush virtual descents from the root, collecting
// the distinct unexpanded non-terminal leaves they reach, evaluates
// them in one batched pass, and stashes each result on its node. Each
// descent increments the visit counts along its path (virtual loss) so
// successive descents spread over different leaves; every increment is
// recorded and reverted before returning, leaving the tree statistics
// untouched. The game state is played forward and undone around every
// descent.
func (t *Tree) speculate(s *game.State, flush int, be BatchEvaluator) {
	t.specVirt = t.specVirt[:0]
	t.specLeaves = t.specLeaves[:0]
	t.specViews = t.specViews[:0]
	for i := 0; i < flush; i++ {
		nd := t.root
		depth := 0
		for {
			if !nd.expanded {
				if !nd.specSeen && !nd.hasPend && !s.Done() && !s.DeadEnd() {
					nd.specSeen = true
					t.specLeaves = append(t.specLeaves, nd)
					// Snapshot: the live view's cost vectors mutate on
					// Undo, the stashed evaluation must see this state
					t.specViews = append(t.specViews, s.Snapshot())
				}
				break
			}
			if nd.terminal {
				break
			}
			a := t.selectAction(nd)
			if a < 0 {
				// exhausted subtree: replay's simulate marks it
				break
			}
			s.Play(a)
			nd.n[a]++
			t.specVirt = append(t.specVirt, specStep{nd, a})
			child := nd.children[a]
			if child == nil {
				child = &node{parent: nd}
				nd.children[a] = child
			}
			nd = child
			depth++
		}
		for ; depth > 0; depth-- {
			s.Undo()
		}
	}
	if len(t.specLeaves) > 0 {
		priors, values := be.EvaluateBatch(t.specViews)
		for i, nd := range t.specLeaves {
			nd.hasPend = true
			nd.pendPrior = priors[i]
			nd.pendValue = values[i]
			nd.specSeen = false
		}
	}
	for _, st := range t.specVirt {
		st.nd.n[st.a]--
	}
}

// simulate is Algorithm 1: descend by UCB to an undiscovered leaf,
// expand and evaluate it, and back-propagate its value. It returns the
// value of the newly evaluated (or terminal) node from the perspective
// of the single player.
func (t *Tree) simulate(s *game.State, nd *node) float64 {
	if !nd.expanded {
		t.expand(s, nd)
		return nd.value
	}
	if nd.terminal {
		return nd.value
	}
	a := t.selectAction(nd)
	if a < 0 {
		// Every child is a known dead end (or masked/illegal), so the
		// node itself is exhausted. Mark it terminal so actionOpen
		// prunes it at the parent; without the mark, every later
		// simulation would re-descend into the spent subtree and burn
		// its share of the k-budget without ever expanding a node.
		nd.terminal = true
		nd.deadEnd = true
		nd.value = -1
		return -1
	}
	s.Play(a)
	child := nd.children[a]
	if child == nil {
		child = &node{parent: nd}
		nd.children[a] = child
	}
	v := t.simulate(s, child)
	s.Undo()
	nd.q[a] = (float64(nd.n[a])*nd.q[a] + v) / float64(nd.n[a]+1)
	nd.n[a]++
	return v
}

// expand appends nd to the tree: terminal states take the game result,
// other states are evaluated by the DNN (the roll-out phase).
func (t *Tree) expand(s *game.State, nd *node) {
	t.nodes++
	nd.expanded = true
	if s.Done() || s.DeadEnd() {
		nd.terminal = true
		nd.deadEnd = s.DeadEnd()
		nd.value = s.TerminalValue()
		return
	}
	var prior tensor.Vec
	var value float64
	if nd.hasPend {
		// consume the evaluation stashed by speculate: bit-identical
		// to evaluating s.View() here (the node's state is fixed by
		// its path, and the batched evaluator matches the scalar one)
		prior, value = nd.pendPrior, nd.pendValue
		nd.hasPend = false
		nd.pendPrior = nil
	} else {
		prior, value = t.eval.Evaluate(s.View())
	}
	if t.cfg.HeuristicValue {
		value = s.HeuristicValue()
	}
	nd.prior = prior
	nd.value = value
	nd.legal = s.LegalMask()
	nd.disabled = make([]bool, t.m)
	nd.n = make([]int, t.m)
	nd.q = make([]float64, t.m)
	nd.children = make([]*node, t.m)
}

// selectAction returns the legal, enabled action maximizing Equation 2,
// or -1 if none remains.
func (t *Tree) selectAction(nd *node) int {
	total := 0
	for _, n := range nd.n {
		total += n
	}
	sqrtTotal := math.Sqrt(t.cfg.Eps + float64(total))
	best, bestU := -1, math.Inf(-1)
	for a := 0; a < t.m; a++ {
		if !nd.actionOpen(a) {
			continue
		}
		u := nd.q[a] + t.cfg.CPuct*nd.prior[a]*sqrtTotal/float64(1+nd.n[a])
		if u > bestU {
			best, bestU = a, u
		}
	}
	return best
}

// Policy returns π(a|s_root) of Equation 3: root visit counts normalized
// over legal, enabled actions. If no simulations reached any child it
// falls back to the prior. The root must be expanded (call Run first).
func (t *Tree) Policy() tensor.Vec {
	nd := t.root
	pi := make(tensor.Vec, t.m)
	if !nd.expanded || nd.terminal {
		return pi
	}
	total := 0.0
	for a := 0; a < t.m; a++ {
		if nd.actionOpen(a) {
			pi[a] = float64(nd.n[a])
			total += pi[a]
		}
	}
	//pbqpvet:ignore floatcmp visit weights are non-negative; an exactly-zero sum means no visits at all
	if total == 0 {
		for a := 0; a < t.m; a++ {
			if nd.actionOpen(a) {
				pi[a] = nd.prior[a]
				total += pi[a]
			}
		}
	}
	if total > 0 {
		for a := range pi {
			pi[a] /= total
		}
	}
	return pi
}

// RootValue returns the DNN value estimate v̂ of the root.
func (t *Tree) RootValue() float64 { return t.root.value }

// RootPrior returns the DNN prior p̂(·|s_root); it aliases tree storage.
func (t *Tree) RootPrior() tensor.Vec { return t.root.prior }

// RootExpanded reports whether the root has been evaluated.
func (t *Tree) RootExpanded() bool { return t.root.expanded }

// Advance moves the root to the child reached by action a, reusing the
// subtree and its statistics (the caller plays a on its state). Unless
// Config.RetainParents is set, the abandoned parent and every sibling
// subtree are detached so the garbage collector can reclaim them.
func (t *Tree) Advance(a int) {
	nd := t.root
	if !nd.expanded || nd.terminal {
		//pbqpvet:ignore panicfree documented contract: Advance is only legal on an expanded non-terminal root
		panic("mcts: Advance on unexpanded or terminal root")
	}
	child := nd.children[a]
	if child == nil {
		child = &node{parent: nd}
		nd.children[a] = child
	}
	if !t.cfg.RetainParents {
		child.parent = nil
		nd.children = nil
	}
	t.root = child
}

// Back moves the root to its parent (the caller undoes the action on
// its state). It panics at the tree root, or whenever the parent chain
// was not retained (see Config.RetainParents).
func (t *Tree) Back() {
	if t.root.parent == nil {
		//pbqpvet:ignore panicfree documented contract: Back requires Config.RetainParents, enforced by the rl solver
		panic("mcts: Back at tree root (backtracking requires Config.RetainParents)")
	}
	t.root = t.root.parent
}

// DisableRootAction masks action a at the root so that neither
// simulation nor Policy considers it again — the backtracking solver's
// "that coloring led to a dead end" marker.
func (t *Tree) DisableRootAction(a int) {
	if t.root.disabled == nil {
		t.root.disabled = make([]bool, t.m)
	}
	t.root.disabled[a] = true
}

// RootHasMove reports whether any legal, enabled action remains at the
// (expanded) root.
func (t *Tree) RootHasMove() bool {
	nd := t.root
	if !nd.expanded || nd.terminal {
		return false
	}
	for a := 0; a < t.m; a++ {
		if nd.actionOpen(a) {
			return true
		}
	}
	return false
}

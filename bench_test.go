package pbqprl_test

// Benchmark harness: one testing.B benchmark per paper table/figure
// (macro benchmarks, DESIGN.md experiments E1–E9) plus micro benchmarks
// of the performance-critical kernels. Macro benchmarks train their
// networks on first use and cache them on disk, so the first -bench run
// pays a few minutes of training.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbqprl"
	"pbqprl/internal/analysis"
	"pbqprl/internal/ate"
	"pbqprl/internal/dist"
	"pbqprl/internal/experiments"
	"pbqprl/internal/game"
	"pbqprl/internal/gcn"
	"pbqprl/internal/llvmsuite"
	"pbqprl/internal/mcts"
	"pbqprl/internal/perfmodel"
	"pbqprl/internal/regalloc"
	"pbqprl/internal/router"
	"pbqprl/internal/selfplay"
	"pbqprl/internal/server"
	"pbqprl/internal/solve/scholz"
)

// --- Macro benchmarks: one per table/figure ---

// BenchmarkFig6 regenerates Figure 6 (E1): nodes generated per ATE
// program for the four solver variants at k_infer 25 and 50.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(nil)
		if len(rows) != 20 {
			b.Fatalf("fig6 rows = %d", len(rows))
		}
	}
}

// BenchmarkATESuccess regenerates the Section V-B success table (E2).
func BenchmarkATESuccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ATESuccess(nil)
		if len(rows) != 3 {
			b.Fatalf("ate-k rows = %d", len(rows))
		}
	}
}

// BenchmarkSearchSpace regenerates the liberty-vs-Deep-RL search-space
// comparison (E3) and the baseline failure table (E9).
func BenchmarkSearchSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.SearchSpace(nil)
		if len(rows) != 10 {
			b.Fatalf("searchspace rows = %d", len(rows))
		}
	}
}

// BenchmarkDeadEndAblation regenerates the dead-end MCTS ablation (E4).
func BenchmarkDeadEndAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DeadEndAblation(nil)
		if len(rows) != 10 {
			b.Fatalf("deadend rows = %d", len(rows))
		}
	}
}

// BenchmarkKTradeoff regenerates the k_train/k_infer trade-off (E5).
func BenchmarkKTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.KTradeoff(nil)
		if len(rows) != 2 {
			b.Fatalf("ktradeoff rows = %d", len(rows))
		}
	}
}

// BenchmarkLLVMCostSum regenerates the Section V-C cost-sum comparison
// (E6) over the 24 benchmark programs.
func BenchmarkLLVMCostSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.CostSums(nil)
		if len(rows) != 24 {
			b.Fatalf("llvm-cost rows = %d", len(rows))
		}
	}
}

// BenchmarkLLVMSpeedup regenerates the Section V-C speedup numbers (E7).
func BenchmarkLLVMSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Speedups(nil)
		if len(rows) != 4 {
			b.Fatalf("llvm-speedup rows = %d", len(rows))
		}
	}
}

// --- Micro benchmarks: the kernels the solvers spend time in ---

func fig2() *pbqprl.Graph {
	g := pbqprl.NewGraph(3, 2)
	g.SetVertexCost(0, pbqprl.Vector{5, 2})
	g.SetVertexCost(1, pbqprl.Vector{5, 0})
	g.SetVertexCost(2, pbqprl.Vector{0, 0})
	return g
}

// BenchmarkGraphTotalCost measures Equation 1 evaluation (E8's kernel).
func BenchmarkGraphTotalCost(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := pbqprl.ErdosRenyi(rng, pbqprl.ErdosRenyiConfig{N: 100, M: 13, PEdge: 0.1, PInf: 0.05})
	sel := make(pbqprl.Selection, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.TotalCost(sel)
	}
}

// BenchmarkScholzSolve measures the reduction solver on a realistic
// compiler-sized problem.
func BenchmarkScholzSolve(b *testing.B) {
	bench := llvmsuite.Generate("Oscar")
	in := regalloc.NewInput(bench.Prog.Funcs[0], regalloc.DefaultTarget(), bench.Allowed[0])
	g := regalloc.BuildPBQP(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := (scholz.Solver{}).Solve(g); !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkLibertySolve measures the enumeration solver on the smallest
// ATE program.
func BenchmarkLibertySolve(b *testing.B) {
	g := ate.Suite()[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pbqprl.Liberty(10_000_000).Solve(g)
	}
}

// BenchmarkMCTSSimulate measures MCTS simulation throughput with the
// uniform evaluator (pure search cost, no network).
func BenchmarkMCTSSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g, _ := pbqprl.ZeroInf(rng, pbqprl.ZeroInfConfig{
		N: 40, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
	})
	st := game.New(g, game.MakeOrder(g, game.OrderDecLiberty, nil))
	tree := mcts.New(mcts.Uniform{}, 13, mcts.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Run(st, 1)
	}
}

// BenchmarkNetEvaluate measures one network evaluation (the roll-out
// cost that dominates Deep-RL inference).
func BenchmarkNetEvaluate(b *testing.B) {
	n := pbqprl.NewNet(pbqprl.NetConfig{M: 13, GCNLayers: 2, Hidden: 32, Blocks: 1, Seed: 3})
	rng := rand.New(rand.NewSource(3))
	g, _ := pbqprl.ZeroInf(rng, pbqprl.ZeroInfConfig{
		N: 40, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
	})
	st := game.New(g, game.MakeOrder(g, game.OrderDecLiberty, nil))
	view := st.View()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = n.Evaluate(view)
	}
}

// BenchmarkGamePlayUndo measures the do/undo transition kernel.
func BenchmarkGamePlayUndo(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g, _ := pbqprl.ZeroInf(rng, pbqprl.ZeroInfConfig{
		N: 60, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
	})
	st := game.New(g, game.MakeOrder(g, game.OrderDecLiberty, nil))
	a := -1
	for c := 0; c < st.M(); c++ {
		if st.Legal(c) {
			a = c
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Play(a)
		st.Undo()
	}
}

// BenchmarkPerfModel measures the cycle estimator over the whole suite.
func BenchmarkPerfModel(b *testing.B) {
	bench := llvmsuite.Generate("FloatMM")
	target := regalloc.DefaultTarget()
	in := regalloc.NewInput(bench.Prog.Funcs[0], target, bench.Allowed[0])
	asn := regalloc.Greedy(in)
	params := perfmodel.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = perfmodel.EstimateFunc(bench.Prog.Funcs[0], asn, params)
	}
}

// --- Batched inference benchmark ---

// inferViews plays ZeroInf benchmark graphs with random legal colors,
// snapshotting the position before every move, until it has collected a
// pool of at least 40 positions: the same mix of shrinking subproblems
// over shared transformed matrices that MCTS leaf batches present to
// the network. Games that dead-end early just contribute fewer views;
// later seeds top the pool up, so the pool composition is deterministic.
func inferViews() []gcn.View {
	var views []gcn.View
	for seed := int64(3); len(views) < 40 && seed < 64; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := pbqprl.ZeroInf(rng, pbqprl.ZeroInfConfig{
			N: 40, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
		})
		st := game.New(g, game.MakeOrder(g, game.OrderDecLiberty, nil))
		for !st.Done() && !st.DeadEnd() {
			views = append(views, st.Snapshot())
			var legal []int
			for c := 0; c < st.M(); c++ {
				if st.Legal(c) {
					legal = append(legal, c)
				}
			}
			if len(legal) == 0 {
				break
			}
			st.Play(legal[rng.Intn(len(legal))])
		}
	}
	return views
}

// BenchmarkInferThroughput measures network evaluations per second
// through the scalar training path (Forward + Softmax, fresh
// allocations every call) and the batched inference engine
// (EvaluateBatch: sparse kernels, content-addressed h⁰ cache, reusable
// scratch) at several microbatch sizes. Every leg evaluates the same
// view mix, so the ns/eval ratio is the engine's speedup independent
// of the machine. After the sub-benchmarks finish the results are
// written to BENCH_infer.json in the repository root; CI regenerates
// the file and fails if a batched speedup falls below 80% of the
// checked-in baseline's.
func BenchmarkInferThroughput(b *testing.B) {
	views := inferViews()
	if len(views) == 0 {
		b.Fatal("no views to evaluate")
	}
	newNet := func() *pbqprl.Net {
		return pbqprl.NewNet(pbqprl.NetConfig{M: 13, GCNLayers: 2, Hidden: 32, Blocks: 1, Seed: 3})
	}
	type result struct {
		Batch     int     `json:"batch"`
		NsPerEval float64 `json:"ns_per_eval"`
		Speedup   float64 `json:"speedup_vs_scalar"`
	}
	// the framework invokes each sub-benchmark more than once (a b.N=1
	// calibration round first), so keep only the final run per leg
	var scalarNs float64
	b.Run("scalar", func(b *testing.B) {
		n := newNet()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			_, _ = n.Evaluate(views[i%len(views)])
		}
		scalarNs = float64(time.Since(start).Nanoseconds()) / float64(b.N)
		b.ReportMetric(scalarNs, "ns/eval")
	})
	batches := []int{1, 8, 32, 128}
	byBatch := map[int]result{}
	for _, bs := range batches {
		bs := bs
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			n := newNet()
			buf := make([]gcn.View, bs)
			b.ResetTimer()
			start := time.Now()
			evals := 0
			for evals < b.N {
				for j := 0; j < bs; j++ {
					buf[j] = views[(evals+j)%len(views)]
				}
				_, _ = n.EvaluateBatch(buf)
				evals += bs
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(evals)
			b.ReportMetric(ns, "ns/eval")
			byBatch[bs] = result{Batch: bs, NsPerEval: ns, Speedup: scalarNs / ns}
		})
	}
	var results []result
	for _, bs := range batches {
		if r, ok := byBatch[bs]; ok {
			results = append(results, r)
		}
	}
	report := struct {
		Benchmark    string   `json:"benchmark"`
		GoMaxProcs   int      `json:"gomaxprocs"`
		Views        int      `json:"views"`
		ScalarNsEval float64  `json:"scalar_ns_per_eval"`
		Results      []result `json:"results"`
	}{"BenchmarkInferThroughput", runtime.GOMAXPROCS(0), len(views), scalarNs, results}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_infer.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Self-play scaling benchmark ---

// BenchmarkSelfplayEpisodes measures episode-generation throughput of
// the training pipeline at several worker counts. The worker count
// never changes the trained network (see internal/selfplay), so the
// sub-benchmarks do identical work and the ratio of their episodes/sec
// metrics is the parallel speedup. After the sub-benchmarks finish the
// results are written to BENCH_selfplay.json in the repository root.
func BenchmarkSelfplayEpisodes(b *testing.B) {
	episodes, ktrain := 16, 16
	if testing.Short() {
		episodes, ktrain = 8, 8
	}
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	type result struct {
		Workers        int     `json:"workers"`
		Episodes       int     `json:"episodes_per_iteration"`
		KTrain         int     `json:"k_train"`
		EpisodesPerSec float64 `json:"episodes_per_sec"`
		SecPerIter     float64 `json:"sec_per_iteration"`
	}
	// the framework invokes each sub-benchmark more than once (a b.N=1
	// calibration round first), so keep only the final run per count
	byWorkers := map[int]result{}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// a fresh trainer per iteration so every measurement
				// plays the same episodes from the same initial
				// network, whatever b.N is
				n := pbqprl.NewNet(pbqprl.NetConfig{M: 4, GCNLayers: 1, Hidden: 16, Blocks: 1, Seed: 1})
				trainer := selfplay.New(n, selfplay.Config{
					EpisodesPerIter: episodes,
					KTrain:          ktrain,
					ReplayCap:       4096,
					// minimal gradient/arena work: the episode loop is
					// what this benchmark scales
					BatchSize:  1,
					TrainSteps: 1,
					ArenaGames: 1,
					ArenaWins:  1,
					Workers:    w,
					Order:      game.OrderFixed,
					Seed:       1,
					Generate: func(rng *rand.Rand) *pbqprl.Graph {
						return pbqprl.ErdosRenyi(rng, pbqprl.ErdosRenyiConfig{
							N: 10 + rng.Intn(6), M: 4, PEdge: 0.4, PInf: 0.05,
						})
					},
				})
				b.StartTimer()
				start := time.Now()
				if _, err := trainer.RunIteration(context.Background()); err != nil {
					b.Fatal(err)
				}
				elapsed += time.Since(start)
			}
			perSec := float64(episodes*b.N) / elapsed.Seconds()
			b.ReportMetric(perSec, "episodes/sec")
			byWorkers[w] = result{
				Workers:        w,
				Episodes:       episodes,
				KTrain:         ktrain,
				EpisodesPerSec: perSec,
				SecPerIter:     elapsed.Seconds() / float64(b.N),
			}
		})
	}
	var results []result
	for _, w := range counts {
		if r, ok := byWorkers[w]; ok {
			results = append(results, r)
		}
	}
	report := struct {
		Benchmark  string   `json:"benchmark"`
		GoMaxProcs int      `json:"gomaxprocs"`
		Results    []result `json:"results"`
	}{"BenchmarkSelfplayEpisodes", runtime.GOMAXPROCS(0), results}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_selfplay.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Serving benchmark ---

// BenchmarkServeThroughput measures end-to-end request throughput of
// the allocation service (internal/server) at several client
// concurrency levels: full HTTP handler path — parse, admission,
// portfolio solve, JSON response — without network sockets, so the
// number is the service's in-process ceiling. After the sub-benchmarks
// finish the results are written to BENCH_serve.json in the repository
// root.
func BenchmarkServeThroughput(b *testing.B) {
	// A small but non-trivial graph (the paper's Figure 2 example): the
	// benchmark exercises the serving overhead, not solver scaling —
	// BenchmarkScholzSolve and friends cover that.
	const graphText = "pbqp 3 2\nv 0 5 2\nv 1 5 0\nv 2 0 0\ne 0 1 0 inf inf 4\ne 1 2 1 0 0 2\n"
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	type result struct {
		Clients        int     `json:"clients"`
		Requests       int     `json:"requests"`
		RequestsPerSec float64 `json:"requests_per_sec"`
	}
	// keep only the final (largest b.N) run per concurrency level
	byClients := map[int]result{}
	for _, c := range counts {
		c := c
		b.Run(fmt.Sprintf("clients=%d", c), func(b *testing.B) {
			srv, err := server.New(server.Config{
				Workers:         runtime.GOMAXPROCS(0),
				QueueDepth:      4096,
				DefaultChain:    []string{"liberty", "scholz"},
				DefaultDeadline: time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			h := srv.Handler()
			var bad atomic.Int64
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for g := 0; g < c; g++ {
				n := b.N / c
				if g < b.N%c {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(graphText))
						rec := httptest.NewRecorder()
						h.ServeHTTP(rec, req)
						if rec.Code != http.StatusOK {
							bad.Add(1)
						}
					}
				}(n)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if bad.Load() > 0 {
				b.Fatalf("%d of %d requests failed", bad.Load(), b.N)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				b.Fatal(err)
			}
			perSec := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(perSec, "req/sec")
			byClients[c] = result{Clients: c, Requests: b.N, RequestsPerSec: perSec}
		})
	}
	var results []result
	for _, c := range counts {
		if r, ok := byClients[c]; ok {
			results = append(results, r)
		}
	}
	report := struct {
		Benchmark  string   `json:"benchmark"`
		GoMaxProcs int      `json:"gomaxprocs"`
		Results    []result `json:"results"`
	}{"BenchmarkServeThroughput", runtime.GOMAXPROCS(0), results}
	// Merge rather than overwrite: BenchmarkRouterThroughput owns the
	// sibling "router" section of the same file.
	mergeBenchServe(b, map[string]any{
		"benchmark":  report.Benchmark,
		"gomaxprocs": report.GoMaxProcs,
		"results":    report.Results,
	})
}

// mergeBenchServe updates the given top-level keys of BENCH_serve.json
// in place, preserving whatever other sections are already there, so
// the serve and router benchmarks can each own part of one report file
// regardless of run order.
func mergeBenchServe(b *testing.B, sections map[string]any) {
	b.Helper()
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile("BENCH_serve.json"); err == nil {
		// Best effort: a corrupt file is replaced, not fatal.
		json.Unmarshal(data, &doc)
	}
	for key, v := range sections {
		data, err := json.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		doc[key] = data
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRouterThroughput measures the fleet front (internal/router)
// on the three paths that matter for repeat-heavy allocation traffic,
// against one real pbqp-serve backend over real sockets:
//
//   - uncached_single_backend: cache disabled, every request a distinct
//     graph — the baseline where each request costs a backend solve;
//   - cache_hit: one graph repeated — after the first solve every
//     request answers from the content-addressed cache;
//   - coalesced: cache disabled, identical concurrent requests —
//     singleflight collapses each wave into one backend solve.
//
// Results merge into the "router" section of BENCH_serve.json, with
// the cache-hit speedup over the uncached baseline called out.
func BenchmarkRouterThroughput(b *testing.B) {
	// Pre-rendered distinct graphs (Figure 2 with a varied cost) so the
	// uncached path cannot accidentally hit the cache or coalesce.
	graphs := make([]string, 512)
	for i := range graphs {
		graphs[i] = fmt.Sprintf("pbqp 3 2\nv 0 %d 2\nv 1 5 0\nv 2 0 0\ne 0 1 0 inf inf 4\ne 1 2 1 0 0 2\n", i+1)
	}
	type result struct {
		Path           string  `json:"path"`
		Clients        int     `json:"clients"`
		Requests       int     `json:"requests"`
		RequestsPerSec float64 `json:"requests_per_sec"`
	}
	run := func(b *testing.B, cacheBytes int64, clients int, graphFor func(i int) string) float64 {
		b.Helper()
		srv, err := server.New(server.Config{
			Workers:         runtime.GOMAXPROCS(0),
			QueueDepth:      4096,
			DefaultChain:    []string{"liberty", "scholz"},
			DefaultDeadline: time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		rt, err := router.New(router.Config{
			Backends:        []string{ts.URL},
			CacheBytes:      cacheBytes,
			QueueDepth:      4096,
			DefaultDeadline: time.Minute,
			MaxDeadline:     time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		h := rt.Handler()
		var bad atomic.Int64
		b.ResetTimer()
		start := time.Now()
		var wg sync.WaitGroup
		next := atomic.Int64{}
		for g := 0; g < clients; g++ {
			n := b.N / clients
			if g < b.N%clients {
				n++
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					req := httptest.NewRequest(http.MethodPost, "/v1/solve",
						strings.NewReader(graphFor(int(next.Add(1)))))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						bad.Add(1)
					}
				}
			}(n)
		}
		wg.Wait()
		elapsed := time.Since(start)
		b.StopTimer()
		if bad.Load() > 0 {
			b.Fatalf("%d of %d requests failed", bad.Load(), b.N)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := rt.Drain(ctx); err != nil {
			b.Fatal(err)
		}
		ts.Close()
		if err := srv.Drain(ctx); err != nil {
			b.Fatal(err)
		}
		perSec := float64(b.N) / elapsed.Seconds()
		b.ReportMetric(perSec, "req/sec")
		return perSec
	}

	clients := 4
	if p := runtime.GOMAXPROCS(0); p > 4 {
		clients = p
	}
	byPath := map[string]result{} // keep only the final (largest b.N) run
	cases := []struct {
		path       string
		cacheBytes int64
		graphFor   func(i int) string
	}{
		{"uncached_single_backend", -1, func(i int) string { return graphs[i%len(graphs)] }},
		{"cache_hit", 0, func(int) string { return graphs[0] }},
		{"coalesced", -1, func(int) string { return graphs[0] }},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.path, func(b *testing.B) {
			perSec := run(b, tc.cacheBytes, clients, tc.graphFor)
			byPath[tc.path] = result{Path: tc.path, Clients: clients, Requests: b.N, RequestsPerSec: perSec}
		})
	}
	var results []result
	for _, tc := range cases {
		if r, ok := byPath[tc.path]; ok {
			results = append(results, r)
		}
	}
	section := map[string]any{
		"benchmark":  "BenchmarkRouterThroughput",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"results":    results,
	}
	if base, hit := byPath["uncached_single_backend"], byPath["cache_hit"]; base.RequestsPerSec > 0 && hit.RequestsPerSec > 0 {
		section["cache_hit_speedup_vs_uncached"] = hit.RequestsPerSec / base.RequestsPerSec
	}
	mergeBenchServe(b, map[string]any{"router": section})
}

// --- Distributed self-play benchmark ---

// BenchmarkDistEpisodes measures episode throughput of the distributed
// training path (internal/dist) at several worker-process-equivalents:
// a coordinator behind a real HTTP listener with N in-process lease
// workers claiming, playing, and streaming trajectories back. The
// worker count never changes the trained network (lease results merge
// in episode order), so the sub-benchmarks do identical work and the
// ratio of their episodes/sec metrics is the distribution speedup net
// of lease/transport overhead. After the sub-benchmarks finish the
// results are written to BENCH_dist.json in the repository root.
func BenchmarkDistEpisodes(b *testing.B) {
	episodes, ktrain := 8, 4
	if testing.Short() {
		episodes, ktrain = 4, 2
	}
	spec := dist.Spec{
		Episodes: episodes,
		KTrain:   ktrain,
		Regime:   "er",
		MeanN:    10,
		Seed:     61,
		Net:      pbqprl.NetConfig{M: 13, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: 7},
	}
	counts := []int{1, 2, 4}
	type result struct {
		Workers        int     `json:"workers"`
		Episodes       int     `json:"episodes_per_iteration"`
		KTrain         int     `json:"k_train"`
		EpisodesPerSec float64 `json:"episodes_per_sec"`
		SecPerIter     float64 `json:"sec_per_iteration"`
	}
	byWorkers := map[int]result{}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				coord := dist.NewCoordinator(dist.CoordinatorConfig{
					Spec:          spec,
					LeaseEpisodes: 2,
					LeaseTTL:      10 * time.Second,
				})
				srv := httptest.NewServer(coord.Handler())
				ctx, cancel := context.WithCancel(context.Background())
				var wg sync.WaitGroup
				for k := 0; k < w; k++ {
					worker, err := dist.NewWorker(dist.WorkerConfig{
						Coordinator: srv.URL,
						Name:        fmt.Sprintf("bench-%d", k),
						Spec:        spec,
						BackoffBase: time.Millisecond,
						Seed:        int64(k + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						worker.Run(ctx)
					}()
				}
				cfg, err := spec.SelfplayConfig()
				if err != nil {
					b.Fatal(err)
				}
				// minimal gradient/arena work: the leased episode loop
				// is what this benchmark scales
				cfg.ReplayCap = 4096
				cfg.BatchSize = 1
				cfg.TrainSteps = 1
				cfg.ArenaGames = 1
				cfg.ArenaWins = 1
				cfg.Episodes = coord.RunEpisodes
				trainer := selfplay.New(pbqprl.NewNet(spec.Net), cfg)
				b.StartTimer()
				start := time.Now()
				if _, err := trainer.RunIteration(context.Background()); err != nil {
					b.Fatal(err)
				}
				elapsed += time.Since(start)
				b.StopTimer()
				cancel()
				wg.Wait()
				srv.Close()
			}
			perSec := float64(episodes*b.N) / elapsed.Seconds()
			b.ReportMetric(perSec, "episodes/sec")
			byWorkers[w] = result{
				Workers:        w,
				Episodes:       episodes,
				KTrain:         ktrain,
				EpisodesPerSec: perSec,
				SecPerIter:     elapsed.Seconds() / float64(b.N),
			}
		})
	}
	var results []result
	for _, w := range counts {
		if r, ok := byWorkers[w]; ok {
			results = append(results, r)
		}
	}
	report := struct {
		Benchmark  string   `json:"benchmark"`
		GoMaxProcs int      `json:"gomaxprocs"`
		Results    []result `json:"results"`
	}{"BenchmarkDistEpisodes", runtime.GOMAXPROCS(0), results}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_dist.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Big-graph decomposition benchmark ---

// BenchmarkBigGraph measures the decomposition pipeline (reduce →
// block-cut split → per-block scholz → recombine) against plain scholz
// and, on the smallest size, plain liberty, on large sparse instances
// from randgraph.LargeSparse. Plain scholz re-scans the whole graph for
// its minimum-degree vertex every elimination step, so its cost grows
// quadratically; the decomposed path hands it blocks of ~a dozen
// vertices and recombines exactly, so it should win on both time and
// cost. After the sub-benchmarks finish the results are written to
// BENCH_biggraph.json in the repository root; CI regenerates the file
// and fails if, on the largest instance, the decomposed solve is less
// than 5× faster than plain scholz or costs more.
func BenchmarkBigGraph(b *testing.B) {
	const (
		seedBig     = 101
		mBig        = 4
		compsBig    = 8
		clusterBig  = 12
		chordsBig   = 4
		libertyCap  = 50_000_000
		libertyUpTo = 5000 // enumeration reference only where it is cheap
	)
	sizes := []int{5000, 20000, 50000}
	if testing.Short() {
		sizes = []int{5000, 20000}
	}
	type solverResult struct {
		Solver         string  `json:"solver"`
		Seconds        float64 `json:"seconds"`
		VerticesPerSec float64 `json:"vertices_per_sec"`
		Cost           float64 `json:"cost"`
		Feasible       bool    `json:"feasible"`
		Truncated      bool    `json:"truncated"`
	}
	type sizeResult struct {
		Vertices        int               `json:"vertices"`
		Edges           int               `json:"edges"`
		Decomposition   pbqprl.DecompInfo `json:"decomposition"`
		Solvers         []solverResult    `json:"solvers"`
		SpeedupVsScholz float64           `json:"decomp_speedup_vs_scholz"`
		CostRatio       float64           `json:"decomp_cost_ratio_vs_scholz"`
	}
	// the framework invokes each sub-benchmark more than once (a b.N=1
	// calibration round first), so keep only the final run per size
	byN := map[int]sizeResult{}
	for _, n := range sizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := pbqprl.LargeSparse(rand.New(rand.NewSource(seedBig)), pbqprl.LargeSparseConfig{
				N: n, M: mBig, Components: compsBig, ClusterSize: clusterBig, Chords: chordsBig,
			})
			ds := pbqprl.Decompose(scholz.Solver{})
			ds.Workers = runtime.GOMAXPROCS(0)
			sr := sizeResult{Vertices: n, Edges: g.NumEdges()}
			measure := func(name string, solveOnce func() pbqprl.Result) solverResult {
				var res pbqprl.Result
				start := time.Now()
				for i := 0; i < b.N; i++ {
					res = solveOnce()
				}
				sec := time.Since(start).Seconds() / float64(b.N)
				return solverResult{
					Solver:         name,
					Seconds:        sec,
					VerticesPerSec: float64(n) / sec,
					Cost:           float64(res.Cost),
					Feasible:       res.Feasible,
					Truncated:      res.Truncated,
				}
			}
			b.ResetTimer()
			dRes := measure(ds.Name(), func() pbqprl.Result {
				r, info := ds.SolveWithInfo(context.Background(), g)
				sr.Decomposition = info
				return r
			})
			sRes := measure("scholz", func() pbqprl.Result { return scholz.Solver{}.Solve(g) })
			sr.Solvers = append(sr.Solvers, dRes, sRes)
			if n <= libertyUpTo {
				sr.Solvers = append(sr.Solvers, measure("liberty", func() pbqprl.Result {
					return pbqprl.Liberty(libertyCap).Solve(g)
				}))
			}
			b.StopTimer()
			if !dRes.Feasible || !sRes.Feasible {
				b.Fatalf("feasibility: decomp=%v scholz=%v", dRes.Feasible, sRes.Feasible)
			}
			sr.SpeedupVsScholz = sRes.Seconds / dRes.Seconds
			sr.CostRatio = dRes.Cost / sRes.Cost
			b.ReportMetric(dRes.VerticesPerSec, "vertices/sec")
			b.ReportMetric(sr.SpeedupVsScholz, "speedup")
			byN[n] = sr
		})
	}
	var results []sizeResult
	for _, n := range sizes {
		if r, ok := byN[n]; ok {
			results = append(results, r)
		}
	}
	report := struct {
		Benchmark  string `json:"benchmark"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Config     struct {
			M           int   `json:"m"`
			Components  int   `json:"components"`
			ClusterSize int   `json:"cluster_size"`
			Chords      int   `json:"chords"`
			Seed        int64 `json:"seed"`
		} `json:"config"`
		Results []sizeResult `json:"results"`
	}{Benchmark: "BenchmarkBigGraph", GoMaxProcs: runtime.GOMAXPROCS(0), Results: results}
	report.Config.M = mBig
	report.Config.Components = compsBig
	report.Config.ClusterSize = clusterBig
	report.Config.Chords = chordsBig
	report.Config.Seed = seedBig
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_biggraph.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Static-analysis cost benchmark ---

// BenchmarkVet measures pbqp-vet's analyzer wall-time over the full
// module: every package is loaded and type-checked once (untimed
// setup), then each iteration runs the whole analyzer suite — the
// per-package analyzers plus the module-wide concurrency suite with
// its call-graph index rebuilt from scratch. The result is written to
// BENCH_vet.json so analysis cost is tracked as the tree grows; the
// load-and-type-check time is reported alongside for context since CI
// pays it once per vet run.
func BenchmarkVet(b *testing.B) {
	dirs, err := analysis.PackageDirs(".")
	if err != nil {
		b.Fatal(err)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	loadStart := time.Now()
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			b.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	loadSec := time.Since(loadStart).Seconds()
	b.ResetTimer()
	start := time.Now()
	findings := 0
	for i := 0; i < b.N; i++ {
		diags, err := analysis.RunModule(pkgs, analysis.All())
		if err != nil {
			b.Fatal(err)
		}
		findings = len(diags)
	}
	msPerRun := float64(time.Since(start).Milliseconds()) / float64(b.N)
	b.ReportMetric(msPerRun, "ms/run")
	report := struct {
		Benchmark  string  `json:"benchmark"`
		GoMaxProcs int     `json:"gomaxprocs"`
		Packages   int     `json:"packages"`
		Analyzers  int     `json:"analyzers"`
		Findings   int     `json:"findings"`
		LoadSec    float64 `json:"load_and_typecheck_sec"`
		MsPerRun   float64 `json:"analyze_ms_per_run"`
	}{"BenchmarkVet", runtime.GOMAXPROCS(0), len(pkgs), len(analysis.All()), findings, loadSec, msPerRun}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_vet.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// Training: a miniature version of the paper's self-play pipeline
// (Figure 1). Each iteration plays episodes of the PBQP game against
// the previously best network, trains on the collected (p̂, p, v̂, v)
// tuples with the combined AlphaZero loss, and promotes the new network
// only if it wins the arena. Afterwards the trained network is compared
// with uniform MCTS on fresh ATE-style graphs.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/rl"
	"pbqprl/internal/selfplay"
)

func main() {
	gen := func(rng *rand.Rand) *pbqp.Graph {
		g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
			N: 20, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
		})
		return g
	}
	n := net.New(net.Config{M: 13, GCNLayers: 2, Hidden: 32, Blocks: 1, Seed: 5})
	trainer := selfplay.New(n, selfplay.Config{
		EpisodesPerIter: 8,
		KTrain:          25,
		// episodes run on all CPUs; the worker count never changes
		// the trained network, only the wall-clock time
		Workers:  runtime.GOMAXPROCS(0),
		Order:    game.OrderDecLiberty,
		Generate: gen,
		Seed:     9,
	})
	fmt.Println("training (each iteration: self-play episodes, gradient steps, arena gate):")
	for i := 0; i < 3; i++ {
		stats, err := trainer.RunIteration(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "training failed:", err)
			os.Exit(1)
		}
		fmt.Println(" ", stats)
	}

	fmt.Println("\nevaluating trained vs uniform MCTS on 10 fresh graphs (backtracking, k=25):")
	rng := rand.New(rand.NewSource(77))
	trainedOK, uniformOK := 0, 0
	var trainedNodes, uniformNodes int64
	for i := 0; i < 10; i++ {
		g := gen(rng)
		trained := &rl.Solver{Net: trainer.Best(), Cfg: rl.Config{
			K: 25, Order: game.OrderDecLiberty, Backtrack: true, ReinvokeMCTS: true,
			MaxNodes: 200_000,
		}}
		uniform := &rl.Solver{Net: mcts.Uniform{}, Cfg: rl.Config{
			K: 25, Order: game.OrderDecLiberty, Backtrack: true, ReinvokeMCTS: true,
			MaxNodes: 200_000,
		}}
		if res := trained.Solve(g); res.Feasible {
			trainedOK++
			trainedNodes += res.States
		}
		if res := uniform.Solve(g); res.Feasible {
			uniformOK++
			uniformNodes += res.States
		}
	}
	fmt.Printf("  trained net: %d/10 solved, %d total nodes\n", trainedOK, trainedNodes)
	fmt.Printf("  uniform    : %d/10 solved, %d total nodes\n", uniformOK, uniformNodes)
}

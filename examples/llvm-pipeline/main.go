// LLVM-style pipeline: compile one benchmark of the synthetic
// llvm-test-suite stand-in through the mini backend — liveness,
// interference, spill weights — then allocate registers with each of
// the Section V-C allocators and compare estimated performance.
package main

import (
	"fmt"

	"pbqprl/internal/llvmsuite"
	"pbqprl/internal/perfmodel"
	"pbqprl/internal/regalloc"
	"pbqprl/internal/solve/scholz"
)

func main() {
	bench := llvmsuite.Generate("Oscar")
	fmt.Printf("benchmark %s: %d function(s)\n", bench.Prog.Name, len(bench.Prog.Funcs))
	f := bench.Prog.Funcs[0]
	fmt.Printf("\nfirst function (%d values, %d blocks):\n", f.NumValues, len(f.Blocks))
	fmt.Print(f)

	target := regalloc.DefaultTarget()
	params := perfmodel.DefaultParams()

	fmt.Printf("\n%-8s %8s %12s %9s\n", "alloc", "spills", "est.cycles", "speedup")
	var fastCycles float64
	report := func(name string, alloc func(regalloc.Input) regalloc.Assignment) {
		spills, cycles := 0, 0.0
		for i, fn := range bench.Prog.Funcs {
			in := regalloc.NewInput(fn, target, bench.Allowed[i])
			asn := alloc(in)
			if err := asn.Validate(in); err != nil {
				panic(err)
			}
			spills += asn.SpillCount()
			cycles += perfmodel.EstimateFunc(fn, asn, params)
		}
		if name == "FAST" {
			fastCycles = cycles
		}
		fmt.Printf("%-8s %8d %12.0f %8.3fx\n", name, spills, cycles, perfmodel.Speedup(fastCycles, cycles))
	}
	report("FAST", regalloc.Fast)
	report("BASIC", regalloc.Basic)
	report("GREEDY", regalloc.Greedy)
	report("PBQP", func(in regalloc.Input) regalloc.Assignment {
		// the PBQP problem: spill option + interference infinities +
		// class restrictions + coalescing hints, solved by reduction
		asn, _ := regalloc.PBQPAlloc(in, scholz.Solver{})
		return asn
	})

	// peek at the PBQP problem the allocator builds
	in := regalloc.NewInput(f, target, bench.Allowed[0])
	g := regalloc.BuildPBQP(in)
	fmt.Printf("\nPBQP problem for %s: %d vertices, %d edges, %d colors (spill + %d registers)\n",
		f.Name, g.NumVertices(), g.NumEdges(), g.M(), target.NumRegs)
}

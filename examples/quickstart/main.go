// Quickstart: build the paper's Figure 2 PBQP graph (3 vertices, 2
// colors, cost sum 24 for one selection and the optimum 11 for
// another), solve it with the exact solver, the original reduction
// solver and an MCTS-guided Deep-RL pass, and print what each finds.
package main

import (
	"fmt"

	"pbqprl/internal/cost"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/scholz"
)

func main() {
	// Figure 2 of the paper: a triangle over two colors.
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, 2})
	g.SetVertexCost(1, cost.Vector{5, 0})
	g.SetVertexCost(2, cost.Vector{0, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{1, 3}, {7, 8}}))
	g.SetEdgeCost(1, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 4}, {9, 6}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 2}, {5, 3}}))

	fmt.Println("PBQP problem (Figure 2):")
	fmt.Print(g)

	// Evaluating arbitrary selections (Equation 1).
	demo := pbqp.Selection{1, 1, 0}
	fmt.Printf("\ncost of selection %v: %s (the paper's first example, 24)\n", demo, g.TotalCost(demo))
	best := pbqp.Selection{0, 0, 0}
	fmt.Printf("cost of selection %v: %s (the optimum, 11)\n", best, g.TotalCost(best))

	// Three solvers, one interface.
	solvers := []solve.Solver{
		brute.Solver{},
		scholz.Solver{},
		&rl.Solver{
			// Uniform priors stand in for a trained network here; see
			// examples/training for the self-play pipeline.
			Net: mcts.Uniform{},
			Cfg: rl.Config{K: 100, Order: game.OrderFixed, Baseline: 12, HasBaseline: true},
		},
	}
	fmt.Println()
	for _, s := range solvers {
		res := s.Solve(g)
		fmt.Printf("%-10s feasible=%v cost=%-6s states=%-4d selection=%v\n",
			s.Name(), res.Feasible, res.Cost, res.States, res.Selection)
	}
}

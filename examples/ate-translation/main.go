// ATE translation: the workflow of Section II-B. A test-pattern program
// verified on one ATE must be re-allocated for a different ATE model
// with irregular register pairing, major-cycle constraints and no data
// memory — so allocation must succeed with zero spills or translation
// fails entirely.
//
// This example generates a synthetic product-level program, derives its
// PBQP graph (every cost zero or infinity), and finds a valid register
// assignment with the backtracking Deep-RL solver guided by plain MCTS
// (run examples/training or cmd/pbqp-train for a trained network).
package main

import (
	"fmt"
	"os"

	"pbqprl/internal/ate"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve/scholz"
)

func main() {
	mach := ate.DefaultMachine()
	prog, _ := ate.Generate(mach, ate.GenConfig{
		Name:      "DEMO",
		NumVRegs:  32,
		PairRatio: 0.35,
		HardRatio: 0.4,
		MaxLive:   10,
		Seed:      42,
	})
	fmt.Println("Test-pattern program to translate:")
	fmt.Print(prog)

	g, err := ate.BuildPBQP(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hard := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.Liberty(v) <= 4 {
			hard++
		}
	}
	fmt.Printf("\nPBQP graph: %d vertices, %d edges, m=%d, %d hard vertices (liberty <= 4)\n",
		g.NumVertices(), g.NumEdges(), g.M(), hard)

	// The original reduction solver usually fails here (it
	// approximates every high-degree vertex).
	if res := (scholz.Solver{}).Solve(g); !res.Feasible {
		fmt.Println("original (Scholz-Eckstein) solver: FAILED - translation would abort")
	} else {
		fmt.Println("original (Scholz-Eckstein) solver: found a solution")
	}

	// Deep-RL with backtracking (Section IV-E). With an untrained
	// (uniform-prior) evaluator, the increasing-liberty order keeps
	// conflicts chronological; a trained network (examples/training,
	// cmd/pbqp-train) unlocks the paper's preferred decreasing-liberty
	// order.
	s := &rl.Solver{Net: mcts.Uniform{}, Cfg: rl.Config{
		K:            25,
		Order:        game.OrderIncLiberty,
		Backtrack:    true,
		ReinvokeMCTS: true,
		MaxNodes:     1_000_000,
	}}
	res, stats := s.SolveStats(g)
	if !res.Feasible {
		fmt.Println("deep-rl solver: FAILED")
		os.Exit(1)
	}
	fmt.Printf("deep-rl solver: success, cost=%s, %d nodes, %d backtracks, %d dead ends\n",
		res.Cost, stats.Nodes, stats.Backtracks, stats.DeadEnds)
	fmt.Print("register assignment:")
	for v, r := range res.Selection {
		if v%8 == 0 {
			fmt.Print("\n  ")
		}
		fmt.Printf("v%-2d->r%-3d", v, r)
	}
	fmt.Println()
	if c := g.TotalCost(res.Selection); !c.IsZero() {
		fmt.Printf("assignment violates a constraint (cost %s)\n", c)
		os.Exit(1)
	}
	fmt.Println("assignment verified: every pairing and major-cycle constraint holds")
}
